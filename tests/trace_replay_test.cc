// Trace record/replay: round-trip byte identity, replay determinism, and
// strict rejection of damaged files (DESIGN.md §8).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/trace/recorder.h"
#include "src/trace/replayer.h"
#include "src/workload/log_patterns.h"

namespace pmemsim {
namespace {

TraceFileHeader G1Header(const std::string& scenario) {
  const PlatformConfig config = *PlatformByName("g1");
  TraceFileHeader h;
  h.fingerprint = PlatformFingerprint(config, 1);
  h.platform_name = "g1";
  h.generation = config.generation;
  h.eadr = config.eadr_enabled;
  h.dimm_count = 1;
  h.scenario = scenario;
  return h;
}

// Records one single-threaded mixed-op run and returns the segment.
TraceSegment RecordMixedRun(System& system, TraceRecorder& recorder) {
  system.SetTraceRecorder(&recorder);
  ThreadContext& ctx = system.CreateThread();
  const PmRegion pm = system.AllocatePm(KiB(16), kXPLineSize);
  const PmRegion dram = system.AllocateDram(KiB(4), kXPLineSize);

  uint8_t buf[512] = {};
  ctx.Store64(pm.At(0), 1);
  ctx.Clwb(pm.At(0));
  ctx.Sfence();
  ctx.Write(pm.At(256), buf, sizeof(buf));
  (void)ctx.Load64(pm.At(256));
  ctx.LoadLine(pm.At(512));
  (void)ctx.Load64NoPrefetch(pm.At(1024));
  ctx.Read(pm.At(0), buf, 128);
  ctx.NtStore64(pm.At(2048), 7);
  ctx.NtStoreLine(pm.At(2048 + 64), buf);
  ctx.NtWrite(pm.At(4096), buf, 320);
  ctx.Clflushopt(pm.At(256));
  ctx.Mfence();
  ctx.AddCompute(120);
  ctx.TraceMarker(3);
  ctx.StreamCopyXPLine(pm.At(8192), dram.At(0));
  const Addr multi[3] = {pm.At(64), pm.At(128), pm.At(192)};
  ctx.LoadMulti(multi, 3);
  ctx.Sfence();

  return recorder.Take("mixed", {{"scenario", "mixed"}, {"k", "v"}});
}

TEST(TraceFormatTest, SerializeParseRoundTripIsLossless) {
  const PlatformConfig config = *PlatformByName("g1");
  System system(config, 1);
  TraceRecorder recorder;
  TraceFile file;
  file.header = G1Header("mixed");
  file.segments.push_back(RecordMixedRun(system, recorder));
  ASSERT_GT(file.segments[0].records.size(), 10u);

  const std::string bytes = file.Serialize();
  TraceFile parsed;
  std::string error;
  ASSERT_TRUE(TraceFile::Parse(bytes, &parsed, &error)) << error;

  EXPECT_EQ(parsed.header.version, kTraceFormatVersion);
  EXPECT_EQ(parsed.header.fingerprint, file.header.fingerprint);
  EXPECT_EQ(parsed.header.platform_name, "g1");
  EXPECT_EQ(parsed.header.scenario, "mixed");
  ASSERT_EQ(parsed.segments.size(), 1u);
  EXPECT_EQ(parsed.segments[0].label, "mixed");
  EXPECT_EQ(parsed.segments[0].meta, file.segments[0].meta);
  EXPECT_EQ(parsed.segments[0].thread_nodes, file.segments[0].thread_nodes);
  ASSERT_EQ(parsed.segments[0].records.size(), file.segments[0].records.size());
  for (size_t i = 0; i < parsed.segments[0].records.size(); ++i) {
    EXPECT_EQ(parsed.segments[0].records[i], file.segments[0].records[i]) << "record " << i;
  }

  // Re-serializing the parsed file reproduces the bytes exactly.
  EXPECT_EQ(parsed.Serialize(), bytes);
}

TEST(TraceReplayTest, ReplayReproducesClocksAndCounters) {
  const PlatformConfig config = *PlatformByName("g1");
  System recorded(config, 1);
  TraceRecorder recorder;
  const TraceSegment seg = RecordMixedRun(recorded, recorder);
  const Counters want = recorded.counters();

  System fresh(config, 1);
  uint32_t markers_seen = 0;
  ReplayOptions opts;
  opts.on_marker = [&](uint32_t id, uint32_t thread) {
    EXPECT_EQ(id, 3u);
    EXPECT_EQ(thread, 0u);
    ++markers_seen;
  };
  const ReplayResult res = ReplaySegment(seg, fresh, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.records_applied, seg.records.size());
  EXPECT_EQ(markers_seen, 1u);
  EXPECT_EQ(res.end_clock, seg.records.back().clock);
  EXPECT_TRUE(fresh.counters() == want);
}

TEST(TraceReplayTest, ReplayUnderFreshRecorderReRecordsIdentically) {
  const PlatformConfig config = *PlatformByName("g1");
  System recorded(config, 1);
  TraceRecorder recorder;
  const TraceSegment seg = RecordMixedRun(recorded, recorder);

  // Attach a recorder to the replaying system: record -> replay -> re-record
  // must reproduce the stream exactly (serialized bytes included).
  System fresh(config, 1);
  TraceRecorder second;
  fresh.SetTraceRecorder(&second);
  const ReplayResult res = ReplaySegment(seg, fresh, {});
  ASSERT_TRUE(res.ok) << res.error;
  const TraceSegment seg2 = second.Take(seg.label, seg.meta);

  TraceFile a, b;
  a.header = b.header = G1Header("mixed");
  a.segments.push_back(seg);
  b.segments.push_back(seg2);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(TraceReplayTest, MultiThreadedWorkloadReplaysDeterministically) {
  const PlatformConfig config = *PlatformByName("g1");
  LogPatternOptions opts;
  opts.ops = 60;
  for (const char* name : {"log_store", "circular_writes", "cacheline_versions"}) {
    System recorded(config, 1);
    TraceRecorder recorder;
    recorded.SetTraceRecorder(&recorder);
    // Two threads with private instances; serial back-to-back execution is
    // itself a valid interleaving, and the trace captures whatever happened.
    for (int t = 0; t < 2; ++t) {
      auto w = LogPatternWorkload::Create(name, opts);
      ASSERT_NE(w, nullptr) << name;
      w->Setup(recorded);
      w->Run(recorded.CreateThread());
    }
    const TraceSegment seg = recorder.Take(name, {});
    ASSERT_EQ(seg.thread_nodes.size(), 2u) << name;
    const Counters want = recorded.counters();

    System fresh(config, 1);
    const ReplayResult res = ReplaySegment(seg, fresh, {});
    ASSERT_TRUE(res.ok) << name << ": " << res.error;
    EXPECT_TRUE(fresh.counters() == want) << name;
  }
}

TEST(TraceReplayTest, ReplayOnWrongPlatformDivergesLoudly) {
  System recorded(*PlatformByName("g1"), 1);
  TraceRecorder recorder;
  const TraceSegment seg = RecordMixedRun(recorded, recorder);

  // Replaying a G1 trace on G2 must fail clock verification, not silently
  // produce wrong counters. (The tool's fingerprint check refuses earlier;
  // this covers the library-level contract.)
  System wrong(*PlatformByName("g2"), 1);
  const ReplayResult res = ReplaySegment(seg, wrong, {});
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("diverged"), std::string::npos) << res.error;
}

TEST(TraceFormatTest, FingerprintIsStableAndDiscriminating) {
  const PlatformConfig g1 = *PlatformByName("g1");
  const PlatformConfig g2 = *PlatformByName("g2");
  const PlatformConfig g2e = *PlatformByName("g2-eadr");
  EXPECT_EQ(PlatformFingerprint(g1, 1), PlatformFingerprint(g1, 1));
  EXPECT_NE(PlatformFingerprint(g1, 1), PlatformFingerprint(g2, 1));
  EXPECT_NE(PlatformFingerprint(g2, 1), PlatformFingerprint(g2e, 1));
  EXPECT_NE(PlatformFingerprint(g1, 1), PlatformFingerprint(g1, 6));

  PlatformConfig tweaked = g1;
  tweaked.optane.write_buffer_bytes += kXPLineSize;
  EXPECT_NE(PlatformFingerprint(g1, 1), PlatformFingerprint(tweaked, 1));
}

// Every strict-prefix truncation of a valid file must be rejected cleanly.
TEST(TraceFormatTest, TruncationAtEveryPrefixIsRejected) {
  const PlatformConfig config = *PlatformByName("g1");
  System system(config, 1);
  TraceRecorder recorder;
  system.SetTraceRecorder(&recorder);
  ThreadContext& ctx = system.CreateThread();
  const PmRegion pm = system.AllocatePm(KiB(4), kXPLineSize);
  for (int i = 0; i < 8; ++i) {
    ctx.NtStore64(pm.At(static_cast<uint64_t>(i) * 64), i);
  }
  ctx.Sfence();

  TraceFile file;
  file.header = G1Header("trunc");
  file.segments.push_back(recorder.Take("trunc", {}));
  const std::string bytes = file.Serialize();
  ASSERT_GT(bytes.size(), 64u);

  for (size_t len = 0; len < bytes.size(); ++len) {
    TraceFile out;
    std::string error;
    EXPECT_FALSE(TraceFile::Parse(bytes.substr(0, len), &out, &error))
        << "prefix of " << len << " bytes parsed";
    EXPECT_FALSE(error.empty());
  }
  // Trailing garbage after a valid file is also rejected.
  TraceFile out;
  std::string error;
  EXPECT_FALSE(TraceFile::Parse(bytes + "x", &out, &error));
}

TEST(TraceFormatTest, CorruptionIsRejected) {
  const PlatformConfig config = *PlatformByName("g1");
  System system(config, 1);
  TraceRecorder recorder;
  system.SetTraceRecorder(&recorder);
  ThreadContext& ctx = system.CreateThread();
  const PmRegion pm = system.AllocatePm(KiB(4), kXPLineSize);
  ctx.Store64(pm.At(0), 1);
  ctx.Clwb(pm.At(0));
  ctx.Sfence();

  TraceFile file;
  file.header = G1Header("corrupt");
  file.segments.push_back(recorder.Take("corrupt", {}));
  const std::string bytes = file.Serialize();

  auto expect_reject = [&](std::string mutated, const char* what) {
    TraceFile out;
    std::string error;
    EXPECT_FALSE(TraceFile::Parse(mutated, &out, &error)) << what;
    EXPECT_FALSE(error.empty()) << what;
  };

  std::string bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  expect_reject(bad_magic, "magic");

  std::string bad_version = bytes;
  bad_version[8] = static_cast<char>(kTraceFormatVersion + 1);  // u32 LE at offset 8
  expect_reject(bad_version, "version");

  std::string bad_footer = bytes;
  bad_footer[bytes.size() - 1] ^= 0xFF;
  expect_reject(bad_footer, "footer magic");

  // Footer record count disagreeing with the segments is reconciled.
  std::string bad_count = bytes;
  bad_count[bytes.size() - 12] ^= 0x01;  // low byte of the u64 total
  expect_reject(bad_count, "footer count");
}

// Fuzz: random op streams round-trip through serialize/parse losslessly and
// replay to the recorded counters. Seeds are fixed — failures reproduce.
TEST(TraceReplayTest, FuzzRandomOpStreamsRoundTripAndReplay) {
  const PlatformConfig config = *PlatformByName("g1");
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull);
    System recorded(config, 1);
    TraceRecorder recorder;
    recorded.SetTraceRecorder(&recorder);
    const uint32_t nthreads = 1 + static_cast<uint32_t>(rng.NextBelow(3));
    std::vector<ThreadContext*> ctxs;
    const PmRegion pm = recorded.AllocatePm(KiB(64), kXPLineSize);
    const PmRegion dram = recorded.AllocateDram(KiB(8), kXPLineSize);
    for (uint32_t t = 0; t < nthreads; ++t) {
      ctxs.push_back(&recorded.CreateThread());
    }

    uint8_t buf[256] = {};
    const uint64_t ops = 80 + rng.NextBelow(80);
    for (uint64_t i = 0; i < ops; ++i) {
      ThreadContext& ctx = *ctxs[rng.NextBelow(nthreads)];
      const Addr a = pm.At(rng.NextBelow(KiB(64) / 64) * 64);
      switch (rng.NextBelow(12)) {
        case 0: (void)ctx.Load64(a); break;
        case 1: ctx.Store64(a, i); break;
        case 2: ctx.LoadLine(a); break;
        case 3: ctx.NtStore64(a, i); break;
        case 4: ctx.Clwb(a); break;
        case 5: ctx.Sfence(); break;
        case 6: ctx.Mfence(); break;
        case 7: ctx.Read(a, buf, 1 + rng.NextBelow(sizeof(buf))); break;
        case 8: ctx.Write(a, buf, 1 + rng.NextBelow(sizeof(buf))); break;
        case 9: ctx.AddCompute(1 + rng.NextBelow(50)); break;
        case 10: ctx.StreamCopyXPLine(pm.At(rng.NextBelow(KiB(64) / 256) * 256), dram.At(0)); break;
        case 11: {
          const Addr multi[4] = {pm.At(0), pm.At(320), pm.At(640), pm.At(960)};
          ctx.LoadMulti(multi, 1 + rng.NextBelow(4));
          break;
        }
      }
    }
    const Counters want = recorded.counters();

    TraceFile file;
    file.header = G1Header("fuzz");
    file.segments.push_back(recorder.Take("fuzz", {{"seed", std::to_string(seed)}}));
    const std::string bytes = file.Serialize();

    TraceFile parsed;
    std::string error;
    ASSERT_TRUE(TraceFile::Parse(bytes, &parsed, &error)) << "seed " << seed << ": " << error;
    ASSERT_EQ(parsed.Serialize(), bytes) << "seed " << seed;

    System fresh(config, 1);
    const ReplayResult res = ReplaySegment(parsed.segments[0], fresh, {});
    ASSERT_TRUE(res.ok) << "seed " << seed << ": " << res.error;
    EXPECT_TRUE(fresh.counters() == want) << "seed " << seed;
  }
}

TEST(TraceRecorderTest, TakeKeepsThreadTableForPhaseSegments) {
  const PlatformConfig config = *PlatformByName("g1");
  System system(config, 1);
  TraceRecorder recorder;
  system.SetTraceRecorder(&recorder);
  ThreadContext& ctx = system.CreateThread();
  const PmRegion pm = system.AllocatePm(KiB(4), kXPLineSize);

  ctx.Store64(pm.At(0), 1);
  const TraceSegment warm = recorder.Take("warm", {});
  ctx.Store64(pm.At(64), 2);
  const TraceSegment measure = recorder.Take("measure", {});

  EXPECT_EQ(warm.records.size(), 1u);
  EXPECT_EQ(measure.records.size(), 1u);
  EXPECT_EQ(warm.thread_nodes, measure.thread_nodes);
  // The second segment's deltas restart: its first record round-trips alone.
  TraceFile file;
  file.header = G1Header("phases");
  file.segments = {warm, measure};
  TraceFile parsed;
  std::string error;
  ASSERT_TRUE(TraceFile::Parse(file.Serialize(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.segments[1].records[0], measure.records[0]);
}

}  // namespace
}  // namespace pmemsim
