// Tests for SMT-sibling thread contexts (shared private caches).

#include <gtest/gtest.h>

#include "src/core/platform.h"
#include "src/cpu/scheduler.h"

namespace pmemsim {
namespace {

TEST(SmtSiblingTest, SharesPrivateCaches) {
  auto system = MakeG1System(1);
  ThreadContext& worker = system->CreateThread();
  ThreadContext& helper = system->CreateSmtSibling(worker);
  const PmRegion region = system->AllocatePm(KiB(4));

  // A line loaded by the helper is an L1 hit for the worker.
  helper.Load64(region.base);
  worker.AdvanceTo(helper.clock());
  const Cycles t0 = worker.clock();
  worker.Load64(region.base);
  EXPECT_EQ(worker.clock() - t0, G1Platform().cache.l1.hit_latency);
  EXPECT_EQ(&worker.hierarchy(), &helper.hierarchy());
}

TEST(SmtSiblingTest, NonSiblingsDoNotShareL1) {
  auto system = MakeG1System(1);
  ThreadContext& a = system->CreateThread();
  ThreadContext& b = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(4));
  a.Load64(region.base);
  b.AdvanceTo(a.clock());
  const Cycles t0 = b.clock();
  b.Load64(region.base);
  // b misses its private L1/L2 but hits the shared L3.
  EXPECT_EQ(b.clock() - t0, G1Platform().cache.l3.hit_latency);
}

TEST(SmtSiblingTest, SiblingStartsAtSiblingClock) {
  auto system = MakeG1System(1);
  ThreadContext& worker = system->CreateThread();
  worker.AddCompute(12345);
  ThreadContext& helper = system->CreateSmtSibling(worker);
  EXPECT_EQ(helper.clock(), worker.clock());
  EXPECT_EQ(helper.node(), worker.node());
}

TEST(SmtSiblingTest, SiblingFillsEvictFromSharedL1) {
  auto system = MakeG1System(1);
  ThreadContext& worker = system->CreateThread();
  ThreadContext& helper = system->CreateSmtSibling(worker);
  const PmRegion region = system->AllocatePm(MiB(1));

  worker.Load64(region.base);  // worker's hot line
  // Helper streams enough conflicting lines through the shared L1 set.
  const uint64_t l1_span = worker.hierarchy().l1().sets() * kCacheLineSize;
  for (uint64_t i = 1; i <= 12; ++i) {
    helper.Load64(region.base + i * l1_span);
  }
  worker.AdvanceTo(helper.clock());
  const Cycles t0 = worker.clock();
  worker.Load64(region.base);
  EXPECT_GT(worker.clock() - t0, G1Platform().cache.l1.hit_latency);  // evicted from L1
}

TEST(SmtSiblingTest, ScheduledSiblingsInterleaveDeterministically) {
  // Worker/helper pairs share private caches, so the scheduler's interleaving
  // decides the simulated cache state — a nondeterministic tie-break would
  // make sibling runs diverge. Drive two pairs through the scheduler twice
  // with colliding clocks and require identical step orders and end clocks.
  auto run_once = [] {
    auto system = MakeG1System(1);
    ThreadContext& w0 = system->CreateThread();
    ThreadContext& h0 = system->CreateSmtSibling(w0);
    ThreadContext& w1 = system->CreateThread();
    ThreadContext& h1 = system->CreateSmtSibling(w1);
    const PmRegion region = system->AllocatePm(KiB(16));
    ThreadContext* ctxs[4] = {&w0, &h0, &w1, &h1};

    std::vector<int> order;
    std::vector<int> counts(4, 0);
    std::vector<SimJob> jobs;
    for (int i = 0; i < 4; ++i) {
      jobs.push_back({ctxs[i], [&, i]() {
                        if (counts[i] >= 8) {
                          return StepResult::kDone;
                        }
                        order.push_back(i);
                        // Helpers prefetch the line their worker reads next;
                        // every step costs the same so clocks collide.
                        ctxs[i]->Load64(region.base +
                                        static_cast<uint64_t>(counts[i]) * kCacheLineSize);
                        ctxs[i]->AddCompute(25);
                        ++counts[i];
                        return StepResult::kProgress;
                      }});
    }
    const Cycles end = Scheduler::Run(jobs);
    return std::make_pair(order, end);
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.first.size(), 4u * 8u);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

}  // namespace
}  // namespace pmemsim
