// pmemsim_watch — `ipmwatch` for the simulated machine.
//
// Runs a named workload and streams one row per sampling interval of
// simulated time, the way the paper watches the real DIMM's media/controller
// counters tick once per second: per-interval iMC and media traffic, the
// derived RA/WA amplifications, buffer hit ratios, occupancy gauges, and
// stall totals. The closing `total` row plus an exact delta-sum check against
// the global counters make the series trustworthy as a partition of the run.
//
//   $ pmemsim_watch --workload=seq_store --platform=g1 --sample_interval_cycles=20000
//   $ pmemsim_watch --workload=rand_load --wss=64M --threads=4 --breakdown
//   $ pmemsim_watch --workload=ntstore --samples_json=samples.json --stats_json=stats.json
//
// --breakdown additionally attaches the per-access latency attributor and
// prints the critical-path table at the end of the run.
//
// --serve_timeline=<path> switches to viewer mode: instead of running a
// workload, renders a pmemsim_serve --timeline_json artifact as per-window
// tables (throughput, sheds, queue depth, windowed tails, SLO verdicts) — the
// same at-a-glance view this tool gives the memory plane, for the request
// plane.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/cpu/scheduler.h"
#include "src/trace/attribution.h"
#include "src/trace/json.h"
#include "src/trace/sampler.h"

namespace {

using namespace pmemsim;

uint64_t ParseSize(const std::string& s) {
  if (s.empty()) {
    return 0;
  }
  const char suffix = s.back();
  const uint64_t base = std::strtoull(s.c_str(), nullptr, 10);
  switch (suffix) {
    case 'K':
    case 'k':
      return KiB(base);
    case 'M':
    case 'm':
      return MiB(base);
    case 'G':
    case 'g':
      return GiB(base);
    default:
      return base;
  }
}

struct WatchConfig {
  PlatformConfig platform;
  std::string workload = "seq_store";
  uint64_t wss = MiB(4);
  uint64_t stride = kCacheLineSize;
  uint32_t threads = 1;
  uint64_t ops = 200000;
  uint64_t distance = 4;  // rap workload: load-behind distance
  uint32_t dimms = 1;
  Cycles interval = 20000;
  bool breakdown = false;
  bool quiet = false;  // suppress per-interval rows (CI smoke with huge runs)
};

struct Worker {
  ThreadContext* ctx = nullptr;
  Rng rng{0};
  uint64_t done = 0;
  uint64_t pos = 0;
};

// One operation of the named workload; returns false for an unknown name.
bool RunOneOp(const WatchConfig& cfg, const PmRegion& region, uint64_t lines, Worker& w) {
  ThreadContext& ctx = *w.ctx;
  const bool seq = cfg.workload.rfind("seq_", 0) == 0 || cfg.workload == "ntstore";
  const uint64_t index = seq ? (w.pos++ % lines) : w.rng.NextBelow(lines);
  const Addr addr = region.At(index * cfg.stride);
  if (cfg.workload == "seq_load" || cfg.workload == "rand_load") {
    ctx.LoadLine(addr);
  } else if (cfg.workload == "seq_store" || cfg.workload == "rand_store") {
    ctx.Store64(addr, w.done);
    ctx.Clwb(addr);
    ctx.Sfence();
  } else if (cfg.workload == "ntstore") {
    ctx.NtStore64(addr, w.done);
    ctx.Sfence();
  } else if (cfg.workload == "rap") {
    ctx.Store64(addr, w.done);
    ctx.Clwb(addr);
    ctx.Mfence();
    const uint64_t back = (index + lines - (cfg.distance % lines)) % lines;
    ctx.Load64(region.At(back * cfg.stride));
  } else {
    return false;
  }
  return true;
}

void PrintColumns() {
  std::printf("%8s %12s %10s %10s %10s %10s %6s %6s %7s %7s %6s %7s %7s %9s %5s\n",
              "interval", "t_end", "imc_rd_B", "imc_wr_B", "med_rd_B", "med_wr_B", "RA", "WA",
              "rb_hit", "wb_hit", "wpq", "rb_ent", "wb_ent", "rap_cyc", "pwb");
}

void PrintRow(const Sample& s) {
  const Counters& d = s.delta;
  char tag[24];
  if (s.partial) {
    std::snprintf(tag, sizeof(tag), "%" PRIu64 "*", s.index);
  } else {
    std::snprintf(tag, sizeof(tag), "%" PRIu64, s.index);
  }
  std::printf("%8s %12" PRIu64 " %10" PRIu64 " %10" PRIu64 " %10" PRIu64 " %10" PRIu64
              " %6.2f %6.2f %6.1f%% %6.1f%% %6.1f %7" PRIu64 " %7" PRIu64 " %9" PRIu64
              " %5" PRIu64 "\n",
              tag, static_cast<uint64_t>(s.t_end), d.imc_read_bytes, d.imc_write_bytes,
              d.media_read_bytes, d.media_write_bytes, d.ReadAmplification(),
              d.WriteAmplification(), 100.0 * d.ReadBufferHitRatio(),
              100.0 * d.WriteBufferHitRatio(), s.gauges.wpq_occupancy,
              s.gauges.read_buffer_entries, s.gauges.write_buffer_entries, d.rap_stall_cycles,
              d.periodic_writebacks);
}

void PrintTotals(Cycles end, const Counters& d) {
  std::printf("%8s %12" PRIu64 " %10" PRIu64 " %10" PRIu64 " %10" PRIu64 " %10" PRIu64
              " %6.2f %6.2f %6.1f%% %6.1f%% %6s %7s %7s %9" PRIu64 " %5" PRIu64 "\n",
              "total", static_cast<uint64_t>(end), d.imc_read_bytes, d.imc_write_bytes,
              d.media_read_bytes, d.media_write_bytes, d.ReadAmplification(),
              d.WriteAmplification(), 100.0 * d.ReadBufferHitRatio(),
              100.0 * d.WriteBufferHitRatio(), "-", "-", "-", d.rap_stall_cycles,
              d.periodic_writebacks);
}

// One cell of a windowed-quantile column: "-" when the window saw no
// completions (the artifact stores null).
const char* QuantileCell(const JsonValue& win, const char* key, char* buf, size_t n) {
  const JsonValue* q = win.Find(key);
  if (q == nullptr || q->type == JsonValue::Type::kNull) {
    return "-";
  }
  std::snprintf(buf, n, "%" PRIu64, q->AsUint());
  return buf;
}

// Viewer mode: renders the global per-window series of every point in a
// pmemsim_serve --timeline_json artifact. Returns a process exit code.
int ViewServeTimeline(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  JsonValue root;
  std::string error;
  if (!JsonValue::Parse(text, &root, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  const JsonValue* points = root.Find("points");
  if (points == nullptr || points->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "error: %s: not a pmemsim_serve timeline artifact\n", path.c_str());
    return 1;
  }

  for (const JsonValue& point : points->array) {
    if (point.type != JsonValue::Type::kObject) {
      std::printf("# point: <failed before flush>\n");
      continue;
    }
    const JsonValue* cfg = point.Find("config");
    const JsonValue* global = point.Find("global");
    const JsonValue* totals = point.Find("totals");
    if (cfg == nullptr || global == nullptr || global->Find("windows") == nullptr ||
        totals == nullptr || point.Find("end") == nullptr) {
      std::fprintf(stderr, "error: %s: point missing required timeline fields\n", path.c_str());
      return 1;
    }
    const JsonValue* truncated = point.Find("truncated");
    std::printf("# point mix=%s loop=%s store=%s engine=%s shards=%" PRIu64
                " interval=%" PRIu64 "%s\n",
                cfg->Find("mix")->string.c_str(), cfg->Find("loop")->string.c_str(),
                cfg->Find("store")->string.c_str(), cfg->Find("engine")->string.c_str(),
                cfg->Find("shards")->AsUint(), cfg->Find("interval_cycles")->AsUint(),
                truncated != nullptr && truncated->boolean ? " TRUNCATED" : "");
    if (const JsonValue* slo = point.Find("slo")) {
      std::printf("# slo p99<=%" PRIu64 ": %" PRIu64 "/%" PRIu64
                  " windows in violation (burn rate %.3f)\n",
                  cfg->Find("slo_p99_cycles")->AsUint(), slo->Find("violations")->AsUint(),
                  slo->Find("windows_with_traffic")->AsUint(),
                  slo->Find("burn_rate")->AsDouble());
    }
    std::printf("%8s %12s %9s %9s %6s %6s %9s %9s %9s %4s\n", "window", "t_end", "completed",
                "admitted", "shed", "depth", "p50", "p99", "p999", "slo");
    const JsonValue* windows = global->Find("windows");
    for (const JsonValue& win : windows->array) {
      char tag[24], p50[24], p99[24], p999[24];
      std::snprintf(tag, sizeof(tag), "%" PRIu64 "%s", win.Find("index")->AsUint(),
                    win.Find("partial")->boolean ? "*" : "");
      const JsonValue* viol = win.Find("slo_violation");
      std::printf("%8s %12" PRIu64 " %9" PRIu64 " %9" PRIu64 " %6" PRIu64 " %6" PRIu64
                  " %9s %9s %9s %4s\n",
                  tag, win.Find("t_end")->AsUint(), win.Find("completed")->AsUint(),
                  win.Find("admitted")->AsUint(), win.Find("shed")->AsUint(),
                  win.Find("queue_depth")->AsUint(),
                  QuantileCell(win, "sojourn_p50", p50, sizeof(p50)),
                  QuantileCell(win, "sojourn_p99", p99, sizeof(p99)),
                  QuantileCell(win, "sojourn_p999", p999, sizeof(p999)),
                  viol == nullptr ? "-" : (viol->boolean ? "VIOL" : "ok"));
    }
    std::printf("%8s %12" PRIu64 " %9" PRIu64 " %9" PRIu64 " %6" PRIu64 "\n", "total",
                point.Find("end")->AsUint(), totals->Find("completed")->AsUint(),
                totals->Find("admitted")->AsUint(), totals->Find("shed")->AsUint());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: pmemsim_watch [--workload=seq_load|rand_load|seq_store|rand_store|ntstore|rap]\n"
        "                     [--platform=g1|g2|g2-eadr] [--dimms=1] [--threads=1]\n"
        "                     [--wss=4M] [--stride=64] [--ops=200000] [--distance=4]\n"
        "                     [--sample_interval_cycles=20000] [--breakdown] [--quiet]\n"
        "       pmemsim_watch --serve_timeline=<path>   render a pmemsim_serve\n"
        "                     --timeline_json artifact instead of running\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }

  // Viewer mode: no workload run, just render the serve timeline artifact.
  const std::string serve_timeline = flags.Get("serve_timeline", "");
  if (!serve_timeline.empty()) {
    flags.RejectUnknown();
    return ViewServeTimeline(serve_timeline);
  }

  WatchConfig cfg;
  const std::string platform_name = flags.Get("platform", "g1");
  const auto platform = PlatformByName(platform_name);
  if (!platform) {
    pmemsim_bench::Flags::BadValue("platform", platform_name, "g1|g2|g2-eadr");
  }
  cfg.platform = *platform;
  cfg.workload = flags.Get("workload", "seq_store");
  cfg.wss = ParseSize(flags.Get("wss", "4M"));
  cfg.stride = flags.GetU64("stride", kCacheLineSize);
  cfg.threads = static_cast<uint32_t>(flags.GetU64("threads", 1));
  cfg.ops = flags.GetU64("ops", 200000);
  cfg.distance = flags.GetU64("distance", 4);
  cfg.dimms = static_cast<uint32_t>(flags.GetU64("dimms", 1));
  cfg.interval = flags.GetU64("sample_interval_cycles", 20000);
  cfg.breakdown = flags.Has("breakdown");
  cfg.quiet = flags.Has("quiet");
  if (cfg.interval == 0) {
    pmemsim_bench::Flags::BadValue("sample_interval_cycles", "0", "positive cycle count");
  }
  if (cfg.wss < cfg.stride || cfg.stride < kCacheLineSize) {
    pmemsim_bench::Flags::BadValue("wss", flags.Get("wss", "4M"),
                                   "working set of at least one stride");
  }
  pmemsim_bench::BenchReport report(flags, "pmemsim_watch");
  flags.RejectUnknown();

  auto system = std::make_unique<System>(cfg.platform, cfg.dimms);
  AttributionCollector attribution;
  if (cfg.breakdown) {
    system->SetAttribution(&attribution);
  }

  const PmRegion region = system->AllocatePm(cfg.wss, kXPLineSize);
  const uint64_t lines = cfg.wss / cfg.stride;
  std::vector<Worker> workers(cfg.threads);
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    workers[t].ctx = &system->CreateThread(0);
    workers[t].rng = Rng(0x3A7C + t * 0x51ED);
  }

  // The sampler and the cross-check delta snapshot the same (zero) state, so
  // SumOfDeltas() must reproduce the global delta field-for-field.
  Sampler sampler(&system->counters(), cfg.interval);
  CounterDelta global_delta(&system->counters());
  sampler.SetGaugeSource([&system](Cycles now) { return system->ReadGauges(now); });
  if (!cfg.quiet) {
    std::printf("# pmemsim_watch workload=%s platform=%s dimms=%u threads=%u wss=%" PRIu64
                "K interval=%" PRIu64 " cycles\n",
                cfg.workload.c_str(), cfg.platform.name.c_str(), cfg.dimms, cfg.threads,
                cfg.wss / 1024, static_cast<uint64_t>(cfg.interval));
    PrintColumns();
    sampler.SetOnSample(PrintRow);
  }

  const uint64_t per_thread = cfg.ops / cfg.threads + (cfg.ops % cfg.threads != 0 ? 1 : 0);
  bool bad_workload = false;
  std::vector<SimJob> jobs;
  for (Worker& w : workers) {
    jobs.push_back({w.ctx, [&cfg, &region, lines, &w, per_thread, &bad_workload]() {
                      if (bad_workload || w.done >= per_thread) {
                        return StepResult::kDone;
                      }
                      if (!RunOneOp(cfg, region, lines, w)) {
                        bad_workload = true;
                        return StepResult::kDone;
                      }
                      ++w.done;
                      return StepResult::kProgress;
                    }});
  }
  const Cycles end = Scheduler::Run(jobs, &sampler);
  if (bad_workload) {
    pmemsim_bench::Flags::BadValue("workload", cfg.workload,
                                   "seq_load|rand_load|seq_store|rand_store|ntstore|rap");
  }
  sampler.Finalize(end);

  const Counters global = global_delta.Delta();
  const Counters sum = sampler.SumOfDeltas();
  if (!cfg.quiet) {
    PrintTotals(end, global);
  }
  const bool conserved = sum == global && sampler.dropped_samples() == 0;
  std::printf("# %" PRIu64 " samples over %" PRIu64 " cycles; delta-sum check: %s\n",
              static_cast<uint64_t>(sampler.samples().size()), static_cast<uint64_t>(end),
              conserved ? "OK" : "MISMATCH");
  if (!conserved) {
    std::fprintf(stderr, "error: interval deltas do not sum to the global counters\n");
    std::fprintf(stderr, "  global: %s\n  summed: %s\n", global.ToString().c_str(),
                 sum.ToString().c_str());
  }

  if (cfg.breakdown) {
    std::printf("\n%s", attribution.CriticalPathTable().c_str());
    report.AddSection("attribution", attribution.ToJson());
  }

  report.AddRow()
      .Set("workload", cfg.workload)
      .Set("platform", cfg.platform.name)
      .Set("threads", cfg.threads)
      .Set("interval_cycles", static_cast<uint64_t>(cfg.interval))
      .Set("samples", static_cast<uint64_t>(sampler.samples().size()))
      .Set("end_cycles", static_cast<uint64_t>(end))
      .Set("wa", global.WriteAmplification())
      .Set("ra", global.ReadAmplification());
  report.AddCounters("global_delta", global);
  report.SetSamplesJson(sampler.ToJson());
  const int rc = report.Finish();
  return conserved ? rc : 1;
}
