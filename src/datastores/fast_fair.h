// A FAST&FAIR-style persistent B+-tree (paper §4.2).
//
// Nodes are 512 B, XPLine-aligned: one header cacheline (count, leaf flag,
// sibling pointer) followed by 28 sorted 16 B entries. In-place insertion
// shifts entries rightward one by one with a persistence barrier after every
// shift — the paper's baseline, which on G1 Optane repeatedly flushes and
// rereads the same cacheline and eats read-after-persist/same-line-persist
// stalls. The out-of-place mode redirects every shift to a RedoLog (fresh log
// cachelines, no repeated-line persists), commits per target cacheline, and
// writes the group back from the DRAM shadow (Fig. 11).
//
// Crash consistency of the baseline follows FAST&FAIR's argument (transient
// duplicate entries are detected by the no-duplicate-pointer invariant); the
// redo mode is recoverable from committed log groups (RedoLog::Recover).

#ifndef SRC_DATASTORES_FAST_FAIR_H_
#define SRC_DATASTORES_FAST_FAIR_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "src/common/types.h"
#include "src/core/system.h"
#include "src/cpu/thread_context.h"
#include "src/persist/redo_log.h"

namespace pmemsim {

enum class BTreeUpdateMode : uint8_t {
  kInPlace,  // barrier after every shift (baseline)
  kRedoLog,  // out-of-place logging per cacheline (optimization)
};

class FastFairTree {
 public:
  static constexpr uint64_t kNodeSize = 512;
  static constexpr uint64_t kEntriesOffset = kCacheLineSize;
  static constexpr uint64_t kEntrySize = 16;
  static constexpr uint64_t kMaxEntries = (kNodeSize - kEntriesOffset) / kEntrySize;  // 28
  static constexpr uint64_t kMinKey = 0;  // internal-node sentinel; user keys are > 0

  FastFairTree(System* system, ThreadContext& ctx, MemoryKind kind = MemoryKind::kOptane);

  // Inserts key -> value (keys must be non-zero and unique per caller).
  // `log` is required in kRedoLog mode and must be exclusive to the caller.
  void Insert(ThreadContext& ctx, uint64_t key, uint64_t value, BTreeUpdateMode mode,
              RedoLog* log = nullptr);

  bool Get(ThreadContext& ctx, uint64_t key, uint64_t* value_out);

  // Overwrites the value of an existing key with an 8-byte atomic store plus
  // a persistence barrier (values live on their own 8 B slot, so in-place
  // update needs no shifting or logging). Returns false if the key is absent.
  bool Update(ThreadContext& ctx, uint64_t key, uint64_t value);

  // Range scan: collects up to `max_results` (key, value) pairs with
  // key >= from, in ascending key order, walking the leaf sibling chain.
  // Returns the number of pairs written to `out`.
  size_t Scan(ThreadContext& ctx, uint64_t from, size_t max_results,
              std::pair<uint64_t, uint64_t>* out);

  uint64_t height() const { return height_; }
  uint64_t size() const { return size_; }
  uint64_t node_count() const { return node_count_; }
  Addr meta_addr() const { return meta_; }

 private:
  struct Promoted {
    uint64_t key;
    Addr node;
  };

  // Field helpers (all timed through ctx).
  static Addr EntryAddr(Addr node, uint64_t index) {
    return node + kEntriesOffset + index * kEntrySize;
  }
  uint64_t Count(ThreadContext& ctx, Addr node) { return ctx.Load64(node); }
  uint64_t IsLeaf(ThreadContext& ctx, Addr node) { return ctx.Load64(node + 8); }

  Addr AllocateNode(ThreadContext& ctx, bool leaf);

  // Shifts entries [pos, count) one slot right and writes the new entry at
  // pos, honoring the update mode. Updates and persists the count.
  void ShiftInsert(ThreadContext& ctx, Addr node, uint64_t count, uint64_t pos, uint64_t key,
                   uint64_t value, BTreeUpdateMode mode, RedoLog* log);

  std::optional<Promoted> InsertRecurse(ThreadContext& ctx, Addr node, uint64_t key,
                                        uint64_t value, BTreeUpdateMode mode, RedoLog* log);

  // Splits a full node; returns the separator to promote.
  Promoted SplitNode(ThreadContext& ctx, Addr node, bool leaf);

  System* system_;
  MemoryKind kind_;
  Addr meta_ = 0;  // persisted root pointer cacheline
  Addr root_ = 0;
  uint64_t height_ = 1;
  uint64_t size_ = 0;
  uint64_t node_count_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_DATASTORES_FAST_FAIR_H_
