#include "src/trace/serve_metrics.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/trace/json.h"
#include "src/workload/ycsb.h"

namespace pmemsim {

ServeMetrics::ServeMetrics(Cycles interval_cycles) : interval_(interval_cycles) {
  PMEMSIM_CHECK_MSG(interval_ > 0, "serve metrics interval must be positive");
}

void ServeMetrics::Begin(Cycles origin) {
  PMEMSIM_CHECK_MSG(!begun_, "ServeMetrics::Begin called twice");
  begun_ = true;
  origin_ = origin;
  max_observed_ = origin;
}

Sampler* ServeMetrics::AttachMemSampler(const Counters* counters, Sampler::GaugeFn gauges) {
  PMEMSIM_CHECK_MSG(begun_, "AttachMemSampler requires Begin (origin anchors the series)");
  sampler_ = std::make_unique<Sampler>(counters, interval_, origin_);
  sampler_->SetGaugeSource(std::move(gauges));
  return sampler_.get();
}

ServeMetrics::Bucket& ServeMetrics::BucketFor(Cycles t) {
  PMEMSIM_CHECK_MSG(begun_, "serve metrics event before Begin");
  PMEMSIM_CHECK_MSG(t >= origin_, "serve metrics event predates the series origin");
  max_observed_ = std::max(max_observed_, t);
  return buckets_[(t - origin_) / interval_];
}

void ServeMetrics::RecordAdmission(Cycles t) {
  ++BucketFor(t).admitted;
  ++total_admitted_;
}

void ServeMetrics::RecordShed(Cycles t) {
  ++BucketFor(t).shed;
  ++total_shed_;
}

void ServeMetrics::RecordCompletion(Cycles end, Cycles sojourn) {
  Bucket& b = BucketFor(end);
  ++b.completed;
  b.sojourn.Add(sojourn);
  ++total_completed_;
}

void ServeMetrics::ObserveQueueDepth(Cycles t, uint64_t depth) {
  Bucket& b = BucketFor(t);
  // Latest observation wins; at equal timestamps the later call wins, which
  // within one engine's deterministic step order is itself deterministic.
  if (!b.has_depth || t >= b.depth_time) {
    b.has_depth = true;
    b.depth_time = t;
    b.depth = depth;
  }
}

void ServeMetrics::Finalize(Cycles end) {
  if (finalized_) return;
  PMEMSIM_CHECK_MSG(begun_, "ServeMetrics::Finalize before Begin");
  PMEMSIM_CHECK_MSG(end >= max_observed_,
                    "serve metrics finalized before the last recorded event");
  finalized_ = true;

  const Cycles span = end - origin_;
  uint64_t total = span / interval_ + ((span % interval_) ? 1 : 0);
  // An empty or instantaneous serve phase still materializes one (possibly
  // zero-width) closing window so every timeline has windows to gate on.
  if (total == 0) total = 1;

  windows_.resize(total);
  for (uint64_t i = 0; i < total; ++i) {
    ServeWindow& win = windows_[i];
    win.index = i;
    win.t_begin = origin_ + i * interval_;
    win.t_end = std::min(origin_ + (i + 1) * interval_, end);
    win.partial = (win.t_end - win.t_begin) < interval_;
  }

  // Fold the sparse buckets in. Events stamped exactly at `end` when `end`
  // lies on a boundary indexed one past the last window; the closing window
  // owns its right edge, so clamp them in. The map iterates in index order,
  // so the >=-time rule keeps the latest depth observation across a clamp.
  struct DepthPick {
    bool has = false;
    Cycles time = 0;
    uint64_t depth = 0;
  };
  std::vector<DepthPick> picks(total);
  for (const auto& [idx, b] : buckets_) {
    ServeWindow& win = windows_[std::min<uint64_t>(idx, total - 1)];
    win.completed += b.completed;
    win.admitted += b.admitted;
    win.shed += b.shed;
    win.sojourn.Merge(b.sojourn);
    DepthPick& pick = picks[win.index];
    if (b.has_depth && (!pick.has || b.depth_time >= pick.time)) {
      pick.has = true;
      pick.time = b.depth_time;
      pick.depth = b.depth;
    }
  }
  buckets_.clear();

  // Queue depth is a gauge: windows without an observation carry the last
  // known occupancy forward (a window with no folds still has a queue).
  uint64_t carry = 0;
  for (uint64_t i = 0; i < total; ++i) {
    if (picks[i].has) carry = picks[i].depth;
    windows_[i].queue_depth = carry;
  }

  // Graft the joined memory-plane series: samples align by construction
  // (same origin, same interval). The sampler may have observed idle clock
  // beyond `end` on the truncated path; clamp those samples in too.
  if (sampler_) {
    sampler_->Finalize(std::max(end, origin_));
    for (const Sample& s : sampler_->samples()) {
      ServeWindow& win = windows_[std::min<uint64_t>(s.index, total - 1)];
      win.has_mem = true;
      win.mem_delta += s.delta;
      win.mem_gauges = s.gauges;  // boundary gauge: last sample wins
    }
  }
}

ServeTimeline::ServeTimeline(const Config& cfg) : cfg_(cfg) {
  PMEMSIM_CHECK_MSG(cfg_.shards > 0, "serve timeline needs at least one shard");
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    metrics_.push_back(std::make_unique<ServeMetrics>(cfg_.interval_cycles));
  }
}

void ServeTimeline::EnableSpans() {
  if (!recorders_.empty()) return;
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    recorders_.push_back(std::make_unique<SpanRecorder>(s));
  }
}

void ServeTimeline::Begin(Cycles origin) {
  PMEMSIM_CHECK_MSG(!begun_, "ServeTimeline::Begin called twice");
  begun_ = true;
  origin_ = origin;
  for (auto& m : metrics_) m->Begin(origin);
}

Sampler* ServeTimeline::AttachGlobalMemSampler(const Counters* counters, Sampler::GaugeFn gauges) {
  PMEMSIM_CHECK_MSG(begun_, "AttachGlobalMemSampler requires Begin");
  global_sampler_ = std::make_unique<Sampler>(counters, cfg_.interval_cycles, origin_);
  global_sampler_->SetGaugeSource(std::move(gauges));
  return global_sampler_.get();
}

void ServeTimeline::Finalize(Cycles end) {
  if (finalized_) return;
  PMEMSIM_CHECK_MSG(begun_, "ServeTimeline::Finalize before Begin");
  finalized_ = true;
  end_ = end;
  for (auto& m : metrics_) m->Finalize(end);
  MergeGlobal();
}

void ServeTimeline::FlushTruncated() {
  if (finalized_) return;
  truncated_ = true;
  if (!begun_) Begin(0);
  Cycles end = origin_;
  for (auto& m : metrics_) end = std::max(end, m->max_observed());
  Finalize(end);
}

void ServeTimeline::MergeGlobal() {
  // Every shard finalized at the same [origin, end] with the same interval,
  // so the window lists are congruent; the global view is the per-index
  // field-wise merge in fixed shard order (determinism: commutative sums,
  // fixed iteration order for the one double field).
  const size_t n = metrics_[0]->windows().size();
  for (const auto& m : metrics_) {
    PMEMSIM_CHECK_MSG(m->windows().size() == n, "shard window counts diverge");
  }
  global_windows_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ServeWindow& g = global_windows_[i];
    const ServeWindow& ref = metrics_[0]->windows()[i];
    g.index = ref.index;
    g.t_begin = ref.t_begin;
    g.t_end = ref.t_end;
    g.partial = ref.partial;
    for (const auto& m : metrics_) {
      const ServeWindow& w = m->windows()[i];
      g.completed += w.completed;
      g.admitted += w.admitted;
      g.shed += w.shed;
      g.queue_depth += w.queue_depth;
      g.sojourn.Merge(w.sojourn);
      // Partitioned engine: the global memory plane is the field-wise sum of
      // the per-domain series (each domain owns a private System).
      if (!global_sampler_ && w.has_mem) {
        g.has_mem = true;
        g.mem_delta += w.mem_delta;
        g.mem_gauges.wpq_occupancy += w.mem_gauges.wpq_occupancy;
        g.mem_gauges.read_buffer_entries += w.mem_gauges.read_buffer_entries;
        g.mem_gauges.write_buffer_entries += w.mem_gauges.write_buffer_entries;
        g.mem_gauges.serve_queue_depth += w.mem_gauges.serve_queue_depth;
      }
    }
  }
  // Legacy engine: one shared System, one global sampler.
  if (global_sampler_) {
    global_sampler_->Finalize(std::max(end_, origin_));
    for (const Sample& s : global_sampler_->samples()) {
      ServeWindow& g = global_windows_[std::min<uint64_t>(s.index, n - 1)];
      g.has_mem = true;
      g.mem_delta += s.delta;
      g.mem_gauges = s.gauges;
    }
  }
}

ServeTimeline::SloSummary ServeTimeline::Slo() const {
  SloSummary slo;
  slo.windows = global_windows_.size();
  for (const ServeWindow& w : global_windows_) {
    if (w.completed == 0) continue;
    ++slo.windows_with_traffic;
    if (w.sojourn.Quantile(0.99) > cfg_.slo_p99_cycles) ++slo.violations;
  }
  slo.burn_rate = slo.windows_with_traffic
                      ? static_cast<double>(slo.violations) /
                            static_cast<double>(slo.windows_with_traffic)
                      : 0.0;
  return slo;
}

void ServeTimeline::WindowToJson(JsonWriter& w, const ServeWindow& win, bool with_slo) const {
  w.BeginObject();
  w.Key("index").Value(win.index);
  w.Key("t_begin").Value(win.t_begin);
  w.Key("t_end").Value(win.t_end);
  w.Key("partial").Value(win.partial);
  w.Key("completed").Value(win.completed);
  w.Key("admitted").Value(win.admitted);
  w.Key("shed").Value(win.shed);
  w.Key("queue_depth").Value(win.queue_depth);
  w.Key("sojourn_p50");
  if (win.sojourn.count()) {
    w.Value(win.sojourn.Quantile(0.50));
  } else {
    w.Null();
  }
  w.Key("sojourn_p99");
  if (win.sojourn.count()) {
    w.Value(win.sojourn.Quantile(0.99));
  } else {
    w.Null();
  }
  w.Key("sojourn_p999");
  if (win.sojourn.count()) {
    w.Value(win.sojourn.Quantile(0.999));
  } else {
    w.Null();
  }
  if (with_slo && cfg_.slo_p99_cycles > 0) {
    w.Key("slo_violation")
        .Value(win.completed > 0 && win.sojourn.Quantile(0.99) > cfg_.slo_p99_cycles);
  }
  if (win.has_mem) {
    w.Key("mem").BeginObject();
    w.Key("imc_read_bytes").Value(win.mem_delta.imc_read_bytes);
    w.Key("imc_write_bytes").Value(win.mem_delta.imc_write_bytes);
    w.Key("media_read_bytes").Value(win.mem_delta.media_read_bytes);
    w.Key("media_write_bytes").Value(win.mem_delta.media_write_bytes);
    w.Key("wpq_stall_cycles").Value(win.mem_delta.wpq_stall_cycles);
    w.Key("wpq_occupancy").Value(win.mem_gauges.wpq_occupancy);
    w.Key("read_buffer_entries").Value(win.mem_gauges.read_buffer_entries);
    w.Key("write_buffer_entries").Value(win.mem_gauges.write_buffer_entries);
    w.Key("serve_queue_depth").Value(win.mem_gauges.serve_queue_depth);
    w.EndObject();
  }
  w.EndObject();
}

void ServeTimeline::ToJson(JsonWriter& w) const {
  PMEMSIM_CHECK_MSG(finalized_, "serve timeline serialized before Finalize");
  w.BeginObject();
  w.Key("schema_version").Value(uint64_t{1});
  w.Key("config").BeginObject();
  w.Key("mix").Value(cfg_.mix);
  w.Key("loop").Value(cfg_.loop);
  w.Key("store").Value(cfg_.store);
  w.Key("engine").Value(cfg_.engine);
  w.Key("shards").Value(uint64_t{cfg_.shards});
  w.Key("interval_cycles").Value(cfg_.interval_cycles);
  w.Key("slo_p99_cycles").Value(cfg_.slo_p99_cycles);
  w.EndObject();
  w.Key("serve_start").Value(origin_);
  w.Key("end").Value(end_);
  w.Key("truncated").Value(truncated_);

  uint64_t completed = 0, admitted = 0, shed = 0;
  for (const auto& m : metrics_) {
    completed += m->total_completed();
    admitted += m->total_admitted();
    shed += m->total_shed();
  }
  w.Key("totals").BeginObject();
  w.Key("completed").Value(completed);
  w.Key("admitted").Value(admitted);
  w.Key("shed").Value(shed);
  w.EndObject();

  if (cfg_.slo_p99_cycles > 0) {
    const SloSummary slo = Slo();
    w.Key("slo").BeginObject();
    w.Key("violations").Value(slo.violations);
    w.Key("windows").Value(slo.windows);
    w.Key("windows_with_traffic").Value(slo.windows_with_traffic);
    w.Key("burn_rate").Value(slo.burn_rate);
    w.EndObject();
  }

  w.Key("global").BeginObject();
  w.Key("windows").BeginArray();
  for (const ServeWindow& win : global_windows_) WindowToJson(w, win, /*with_slo=*/true);
  w.EndArray();
  w.EndObject();

  w.Key("shards").BeginArray();
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    w.BeginObject();
    w.Key("shard").Value(uint64_t{s});
    w.Key("windows").BeginArray();
    for (const ServeWindow& win : metrics_[s]->windows()) {
      WindowToJson(w, win, /*with_slo=*/false);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string ServeTimeline::ToJson() const {
  JsonWriter w;
  ToJson(w);
  return w.str();
}

std::string ServeTimeline::SpansToJson() const {
  // Columnar form: one array per field, rows aligned by position, shards
  // concatenated in index order — ~4x smaller than an object per span and
  // byte-stable across host parallelism by the same argument as the windows.
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Value(uint64_t{1});
  w.Key("ops").BeginArray();
  for (int i = 0; i < kServeOpCount; ++i) {
    w.Value(ServeOpName(static_cast<ServeOp>(i)));
  }
  w.EndArray();
  w.Key("stages").BeginArray();
  for (int s = 0; s < AttributionCollector::kStageCount; ++s) {
    w.Value(AttributionCollector::StageName(static_cast<AttributionCollector::Stage>(s)));
  }
  w.EndArray();

  uint64_t dropped = 0;
  auto column = [&](const char* name, auto&& get) {
    w.Key(name).BeginArray();
    for (const auto& r : recorders_) {
      for (const RequestSpan& sp : r->spans()) w.Value(get(sp));
    }
    w.EndArray();
  };
  w.Key("spans").BeginObject();
  column("shard", [](const RequestSpan& s) { return uint64_t{s.shard}; });
  column("client", [](const RequestSpan& s) { return uint64_t{s.client}; });
  column("op", [](const RequestSpan& s) { return uint64_t{s.op}; });
  column("arrival", [](const RequestSpan& s) { return s.arrival; });
  column("admit", [](const RequestSpan& s) { return s.admit; });
  column("start", [](const RequestSpan& s) { return s.start; });
  column("end", [](const RequestSpan& s) { return s.end; });
  w.Key("stage_cycles").BeginArray();
  for (int st = 0; st < AttributionCollector::kStageCount; ++st) {
    w.BeginArray();
    for (const auto& r : recorders_) {
      for (const RequestSpan& sp : r->spans()) w.Value(sp.stages[st]);
    }
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();

  for (const auto& r : recorders_) dropped += r->dropped();
  w.Key("dropped").Value(dropped);
  w.EndObject();
  return w.str();
}

std::string ServeTimeline::SpansToChromeTrace() const {
  // chrome://tracing "X" (complete) events; ts/dur are simulated cycles
  // rendered as microseconds by the viewer — relative shape is what matters.
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ns");
  w.Key("traceEvents").BeginArray();
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    w.BeginObject();
    w.Key("name").Value("process_name");
    w.Key("ph").Value("M");
    w.Key("pid").Value(uint64_t{s});
    w.Key("args").BeginObject().Key("name").Value("shard " + std::to_string(s)).EndObject();
    w.EndObject();
  }
  for (const auto& r : recorders_) {
    for (const RequestSpan& sp : r->spans()) {
      w.BeginObject();
      w.Key("name").Value(ServeOpName(static_cast<ServeOp>(sp.op)));
      w.Key("ph").Value("X");
      w.Key("pid").Value(uint64_t{sp.shard});
      w.Key("tid").Value(uint64_t{sp.client});
      w.Key("ts").Value(sp.start);
      w.Key("dur").Value(sp.service());
      w.Key("args").BeginObject();
      w.Key("arrival").Value(sp.arrival);
      w.Key("admit").Value(sp.admit);
      w.Key("queue_wait").Value(sp.start - sp.arrival);
      w.Key("stages").BeginObject();
      for (int st = 0; st < AttributionCollector::kStageCount; ++st) {
        if (sp.stages[st] == 0) continue;
        w.Key(AttributionCollector::StageName(static_cast<AttributionCollector::Stage>(st)))
            .Value(sp.stages[st]);
      }
      w.EndObject();
      w.EndObject();
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace pmemsim
