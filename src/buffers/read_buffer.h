// On-DIMM read buffer (paper §3.1).
//
// Findings modeled here:
//  * capacity of 16 KB (G1) / 22 KB (G2), organized as 256 B XPLine entries;
//  * FIFO eviction: a working set one entry larger than capacity misses on
//    every access (the sharp RA jump in Fig. 2);
//  * exclusivity with the CPU caches: delivering a cacheline to the iMC
//    invalidates that cacheline's copy in the buffer, so re-reading a line
//    always costs a fresh 256 B media fetch — RA never drops below 1.
//
// The buffer is a ring of XPLine slots; each slot carries a 4-bit valid mask
// (one bit per cacheline). Victim selection is O(1) in both modes: slots
// vacated by a §3.3 read->write transition go on a free list consulted before
// the FIFO hand (so a live slot is never evicted while a freed one sits
// unused), and LRU mode keeps an intrusive recency list (prev/next slot
// indices) instead of scanning every slot for the oldest timestamp — the
// victim is always the exact least-recently-touched slot, identical to the
// scan it replaced.

#ifndef SRC_BUFFERS_READ_BUFFER_H_
#define SRC_BUFFERS_READ_BUFFER_H_

#include <cstdint>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/types.h"
#include "src/trace/counters.h"

namespace pmemsim {

// Replacement policy knobs (the shipped hardware behaves FIFO + exclusive,
// per §3.1; the alternatives exist for the ablation benches).
enum class ReadBufferEviction : uint8_t { kFifo, kLru };

class ReadBuffer {
 public:
  ReadBuffer(uint64_t capacity_bytes, Counters* counters,
             ReadBufferEviction eviction = ReadBufferEviction::kFifo, bool exclusive = true);

  // True if the cacheline at `line_addr` can be served from the buffer.
  bool Probe(Addr line_addr) const;

  // Serves the cacheline: on hit, clears its valid bit (exclusive delivery)
  // and returns true. On miss returns false.
  bool ConsumeLine(Addr line_addr);

  // Installs (or refreshes) the XPLine containing `addr` with all four
  // cachelines valid, evicting a victim if no slot is free.
  void Fill(Addr addr);

  // Media-miss delivery: fills the XPLine and hands the requested cacheline
  // to the requester (clearing its valid bit under exclusivity) WITHOUT
  // touching the hit/miss counters — the miss was already counted by the
  // probe that led here, and the delivery is an artifact of the fill, not a
  // buffer hit.
  void FillForDelivery(Addr line_addr);

  // True if the XPLine containing `addr` occupies a slot (any valid bits).
  bool ContainsXPLine(Addr addr) const;

  // Removes the XPLine containing `addr` (used when a write transitions the
  // XPLine to the write buffer, paper §3.3). Returns true if it was present.
  // The vacated slot goes on the free list and is reused before any live
  // slot is evicted.
  bool Remove(Addr addr);

  void Clear();

  // Host-side hint: warm the index bucket a lookup of `addr` will probe.
  // No simulated effect.
  void PrefetchLookup(Addr addr) const { map_.Prefetch(XPLineBase(addr)); }

  size_t capacity_entries() const { return static_cast<size_t>(slots_.size()); }
  size_t occupied_entries() const { return map_.size(); }

 private:
  static constexpr uint32_t kNil = ~uint32_t{0};

  // Fill() body; returns the slot the XPLine landed in so FillForDelivery can
  // clear the delivered line's valid bit without a second index lookup.
  uint32_t FillSlot(Addr addr);

  struct Slot {
    Addr xpline = 0;
    uint8_t valid_mask = 0;  // bit i = cacheline i valid
    bool in_use = false;
    // Intrusive LRU links (LRU mode only): slot indices, kNil-terminated.
    uint32_t lru_prev = kNil;
    uint32_t lru_next = kNil;
  };

  size_t PickVictim();
  // Pops the oldest usable free slot, or kNil if none.
  uint32_t PopFree();
  void LruUnlink(uint32_t i);
  void LruPushFront(uint32_t i);

  Counters* counters_;
  ReadBufferEviction eviction_;
  bool exclusive_;
  std::vector<Slot> slots_;
  size_t next_fill_ = 0;  // FIFO cursor (virgin-slot fills keep it at 0)
  // Free slots in the order they became free: all slots at construction,
  // then whatever Remove vacates. Consumed from free_head_.
  std::vector<uint32_t> free_;
  size_t free_head_ = 0;
  uint32_t lru_head_ = kNil;  // most recently touched
  uint32_t lru_tail_ = kNil;  // eviction victim
  FlatMap<Addr, uint32_t> map_;  // XPLine base -> slot index
};

}  // namespace pmemsim

#endif  // SRC_BUFFERS_READ_BUFFER_H_
