#!/usr/bin/env bash
# Regenerates every table and figure of the paper with the recommended
# parameters (the analog of the original artifact's run.py). Results land in
# results/<experiment>.csv.
#
# Usage: scripts/run_paper_experiments.sh [build_dir] [results_dir]

set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

run() {
  local name="$1"
  shift
  echo ">>> $name $*"
  "$BUILD/bench/$name" "$@" | tee "$OUT/$name.csv"
}

# §3 microbenchmarks
run fig02_read_buffer
run fig03_write_amplification
run fig04_write_buffer_hit
run sec33_buffer_separation
run fig06_prefetch --max_visits=60000
run fig07_rap
run fig08_latency --gen=g1
echo ">>> fig08_latency (G2)"
"$BUILD/bench/fig08_latency" --gen=g2 --max_mb=256 | tee "$OUT/fig08_latency_g2.csv"

# §4 case studies
run table1_cceh_breakdown --keys=2000000
run fig10_cceh_prefetch --keys=600000
run fig12_btree --keys=120000
run fig13_redirect_ratio
run fig14_redirect_scaling

# Design-choice ablations
run ablation_read_buffer
run ablation_write_buffer
run ablation_wpq_depth
run ablation_persistency
run ablation_eadr

echo "All experiments written to $OUT/"
