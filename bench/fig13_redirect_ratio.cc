// Figure 13 (paper §4.3): the read-ratio effect of redirecting XPLine-aligned
// accesses through AVX streaming copies into DRAM bounce buffers (Algorithm
// 2). With default prefetching, random XPLine-sized accesses misprefetch
// across block boundaries and the media reads up to ~2x the demanded data;
// the redirect path never trains the prefetchers and brings the ratio back
// to ~1.
//
// Output: CSV  gen,variant,wss_kb,pm_ratio,imc_ratio

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/random.h"
#include "src/core/platform.h"
#include "src/trace/counters.h"

namespace {

using namespace pmemsim;

struct Ratios {
  double pm = 0;
  double imc = 0;
};

Ratios MeasureRedirect(Generation gen, uint64_t wss, bool optimized, uint64_t max_visits,
                       uint32_t repeats) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread();
  // Default platform prefetching: all three prefetchers on.
  SetPrefetchers(ctx, true, true, true);

  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  const PmRegion bounce = system->AllocateDram(kXPLineSize, kXPLineSize);
  const uint64_t blocks = wss / kXPLineSize;

  std::vector<uint64_t> order(blocks);
  for (uint64_t i = 0; i < blocks; ++i) {
    order[i] = i;
  }
  Rng rng(0xF13 + wss);

  auto visit_blocks = [&](uint64_t visits) {
    uint64_t done = 0;
    while (done < visits) {
      rng.Shuffle(order);
      for (const uint64_t b : order) {
        const Addr base = region.base + b * kXPLineSize;
        if (optimized) {
          // Algorithm 2: one streaming copy, then operate on the DRAM buffer.
          ctx.StreamCopyXPLine(base, bounce.base);
          for (uint32_t r = 0; r < repeats; ++r) {
            for (uint64_t cl = 0; cl < kLinesPerXPLine; ++cl) {
              ctx.LoadLine(bounce.base + cl * kCacheLineSize);
            }
          }
          for (uint64_t cl = 0; cl < kLinesPerXPLine; ++cl) {
            ctx.Clflushopt(base + cl * kCacheLineSize);
          }
        } else {
          for (uint32_t r = 0; r < repeats; ++r) {
            for (uint64_t cl = 0; cl < kLinesPerXPLine; ++cl) {
              ctx.LoadLine(base + cl * kCacheLineSize);
            }
          }
          for (uint64_t cl = 0; cl < kLinesPerXPLine; ++cl) {
            ctx.Clflushopt(base + cl * kCacheLineSize);
          }
        }
        ctx.Sfence();
        if (++done >= visits) {
          break;
        }
      }
    }
  };

  const uint64_t warm = std::max<uint64_t>(std::min<uint64_t>(blocks, max_visits), 4096);
  const uint64_t measured = std::max<uint64_t>(std::min<uint64_t>(2 * blocks, max_visits), 8192);
  visit_blocks(warm);
  CounterDelta delta(&system->counters());
  visit_blocks(measured);
  const Counters d = delta.Delta();
  const double demand = static_cast<double>(measured) * kXPLineSize;
  return {static_cast<double>(d.media_read_bytes) / demand,
          static_cast<double>(d.imc_read_bytes) / demand};
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: fig13_redirect_ratio [--gen=g1|g2|both] [--max_mb=1024] [--max_visits=60000]\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const std::string gen_flag = flags.Get("gen", "both");
  const uint64_t max_mb = flags.GetU64("max_mb", 1024);
  const uint64_t max_visits = flags.GetU64("max_visits", 60000);
  pmemsim_bench::BenchReport report(flags, "fig13_redirect_ratio");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Figure 13", "misprefetch reduction via AVX redirect (Algorithm 2)");
  std::printf("gen,variant,wss_kb,pm_ratio,imc_ratio\n");
  for (Generation gen : {Generation::kG1, Generation::kG2}) {
    if ((gen == Generation::kG1 && gen_flag == "g2") ||
        (gen == Generation::kG2 && gen_flag == "g1")) {
      continue;
    }
    for (const bool optimized : {false, true}) {
      for (uint64_t kb = 4; kb <= max_mb * 1024; kb *= 4) {
        const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
        const char* variant = optimized ? "optimized" : "prefetching";
        const std::string label =
            std::string(gen_name) + "/" + variant + "/" + std::to_string(kb) + "kb";
        runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
          const Ratios r = MeasureRedirect(gen, KiB(kb), optimized, max_visits, /*repeats=*/4);
          point.Printf("%s,%s,%llu,%.3f,%.3f\n", gen_name, variant,
                       static_cast<unsigned long long>(kb), r.pm, r.imc);
          point.AddRow()
              .Set("gen", gen_name)
              .Set("variant", variant)
              .Set("wss_kb", kb)
              .Set("pm_ratio", r.pm)
              .Set("imc_ratio", r.imc);
        });
      }
    }
  }
  return runner.Finish(report);
}
