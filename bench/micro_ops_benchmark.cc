// google-benchmark microbenchmarks of the simulator's own hot paths (real
// wall-clock cost per simulated operation, not simulated cycles). Useful as a
// performance-regression harness for the simulator: the figure benches above
// issue hundreds of millions of these ops.

#include <benchmark/benchmark.h>

#include "src/core/platform.h"
#include "src/datastores/cceh.h"
#include "src/workload/ycsb.h"

namespace {

using namespace pmemsim;

void BM_CachedLoad(benchmark::State& state) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(KiB(4));
  ctx.Load64(region.base);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Load64(region.base));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedLoad);

void BM_RandomMediaLoad(benchmark::State& state) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  SetPrefetchers(ctx, false, false, false);
  const PmRegion region = system->AllocatePm(MiB(256));
  Rng rng(1);
  const uint64_t lines = region.size / kCacheLineSize;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Load64(region.base + rng.NextBelow(lines) * kCacheLineSize));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomMediaLoad);

void BM_PersistBarrier(benchmark::State& state) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(MiB(1));
  uint64_t i = 0;
  const uint64_t lines = region.size / kCacheLineSize;
  for (auto _ : state) {
    const Addr a = region.base + (i++ % lines) * kCacheLineSize;
    ctx.Store64(a, i);
    ctx.Clwb(a);
    ctx.Sfence();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PersistBarrier);

void BM_NtStoreFence(benchmark::State& state) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(MiB(1));
  uint64_t i = 0;
  const uint64_t lines = region.size / kCacheLineSize;
  for (auto _ : state) {
    ctx.NtStore64(region.base + (i++ % lines) * kCacheLineSize, i);
    ctx.Sfence();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NtStoreFence);

void BM_StreamCopyXPLine(benchmark::State& state) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(MiB(16), kXPLineSize);
  const PmRegion bounce = system->AllocateDram(kXPLineSize, kXPLineSize);
  Rng rng(2);
  const uint64_t xplines = region.size / kXPLineSize;
  for (auto _ : state) {
    ctx.StreamCopyXPLine(region.base + rng.NextBelow(xplines) * kXPLineSize, bounce.base);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamCopyXPLine);

void BM_CcehInsert(benchmark::State& state) {
  auto system = MakeG1System(1);
  ThreadContext& ctx = system->CreateThread();
  Cceh table(system.get(), ctx, 8, MemoryKind::kOptane);
  uint64_t key = 0;
  for (auto _ : state) {
    table.Insert(ctx, ++key, key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CcehInsert);

}  // namespace

BENCHMARK_MAIN();
