// Telemetry counters: the simulator's equivalent of `ipmwatch` plus internal
// buffer statistics the real hardware never exposes.
//
// Counting points mirror the paper's metric definitions (§2.4):
//   imc_*_bytes   — traffic crossing the iMC<->DIMM boundary (64 B units)
//   media_*_bytes — traffic crossing the buffer<->3D-Xpoint boundary (256 B)
//   WA = media_write_bytes / imc_write_bytes
//   RA = media_read_bytes  / imc_read_bytes
//
// Scoping model: each writer (a DIMM, a WPQ, a thread, the iMC itself) owns a
// scope-local Counters inside a CounterRegistry and only ever increments that
// one. The system-level Counters is *bound* to the registry and materializes
// the sum over scopes on Sync(); System::counters() and CounterDelta call
// Sync() so existing read sites observe live totals.

#ifndef SRC_TRACE_COUNTERS_H_
#define SRC_TRACE_COUNTERS_H_

#include <cstdint>
#include <string>

// Single source of truth for the counter fields: every operator, the JSON
// (de)serializer, and the registry aggregation iterate this list, so adding a
// field here is the whole change.
#define PMEMSIM_COUNTER_FIELDS(X)                                            \
  /* iMC boundary (what the processor requested of persistent memory). */    \
  X(imc_read_bytes)                                                          \
  X(imc_write_bytes)                                                         \
  /* Media boundary (what actually hit the 3D-Xpoint media). */              \
  X(media_read_bytes)                                                        \
  X(media_write_bytes)                                                       \
  /* On-DIMM buffer behaviour. */                                            \
  X(read_buffer_hits)                                                        \
  X(read_buffer_misses)                                                      \
  X(write_buffer_hits)                                                       \
  X(write_buffer_misses)                                                     \
  X(write_buffer_evictions)                                                  \
  X(periodic_writebacks)                                                     \
  X(rmw_media_reads)                                                         \
  X(read_write_transitions)                                                  \
  /* AIT translation cache. */                                               \
  X(ait_hits)                                                                \
  X(ait_misses)                                                              \
  /* iMC queues. */                                                          \
  X(wpq_stall_cycles)                                                        \
  X(rap_stall_cycles)                                                        \
  X(rap_stalled_loads)                                                       \
  /* CPU-side. */                                                            \
  X(demand_loads)                                                            \
  X(demand_stores)                                                           \
  X(prefetch_requests)                                                       \
  X(l1_hits)                                                                 \
  X(l2_hits)                                                                 \
  X(l3_hits)                                                                 \
  X(cache_misses)                                                            \
  /* DRAM boundary. */                                                       \
  X(dram_read_bytes)                                                         \
  X(dram_write_bytes)

namespace pmemsim {

class CounterRegistry;
class JsonWriter;
struct JsonValue;

struct Counters {
  // Field semantics (beyond the section comments in the list above):
  //   write_buffer_hits       — 64 B write merged into a resident XPLine
  //   write_buffer_misses     — 64 B write that allocated a new entry
  //   rmw_media_reads         — media reads forced by partial-line eviction
  //   read_write_transitions  — XPLine moved read buffer -> write buffer
  //   wpq_stall_cycles        — cycles stores waited for WPQ space
  //   rap_stall_cycles        — cycles loads waited on in-flight persists
  //   prefetch_requests       — prefetches that reached the iMC
  //   cache_misses            — demand misses that reached memory
#define PMEMSIM_DECLARE_FIELD(name) uint64_t name = 0;
  PMEMSIM_COUNTER_FIELDS(PMEMSIM_DECLARE_FIELD)
#undef PMEMSIM_DECLARE_FIELD

  Counters() = default;
  // Copies counter values only: a copy of a registry-bound aggregate is a
  // plain snapshot, and assignment never re-binds the destination.
  Counters(const Counters& other);
  Counters& operator=(const Counters& other);

  double WriteAmplification() const {
    return imc_write_bytes ? static_cast<double>(media_write_bytes) /
                                 static_cast<double>(imc_write_bytes)
                           : 0.0;
  }
  double ReadAmplification() const {
    return imc_read_bytes ? static_cast<double>(media_read_bytes) /
                                static_cast<double>(imc_read_bytes)
                          : 0.0;
  }
  double WriteBufferHitRatio() const {
    const uint64_t total = write_buffer_hits + write_buffer_misses;
    return total ? static_cast<double>(write_buffer_hits) / static_cast<double>(total) : 0.0;
  }
  double ReadBufferHitRatio() const {
    const uint64_t total = read_buffer_hits + read_buffer_misses;
    return total ? static_cast<double>(read_buffer_hits) / static_cast<double>(total) : 0.0;
  }

  Counters operator-(const Counters& rhs) const;
  Counters& operator+=(const Counters& rhs);
  bool operator==(const Counters& rhs) const;
  bool operator!=(const Counters& rhs) const { return !(*this == rhs); }

  // Binds this struct as the live aggregate over `registry`'s scopes: Sync()
  // re-materializes the fields as the sum. Plain (writer-owned) counters are
  // never bound and Sync() is a no-op on them. Logically const: reading an
  // aggregate refreshes the cached materialization.
  void BindAggregate(const CounterRegistry* registry);
  void Sync() const;

  std::string ToString() const;
  // Serializes every raw field plus a "derived" block (WA/RA/hit ratios).
  void ToJson(JsonWriter& w) const;
  std::string ToJson() const;

 private:
  const CounterRegistry* aggregate_source_ = nullptr;
};

// Iterates (name, value) over every counter field; `CountersT` may be const.
template <typename CountersT, typename Fn>
void ForEachCounterField(CountersT& c, Fn&& fn) {
#define PMEMSIM_VISIT_FIELD(name) fn(#name, c.name);
  PMEMSIM_COUNTER_FIELDS(PMEMSIM_VISIT_FIELD)
#undef PMEMSIM_VISIT_FIELD
}

// Restores raw fields from a JSON object produced by ToJson(). Returns false
// when `v` is not an object or a field is missing/non-integer.
bool CountersFromJson(const JsonValue& v, Counters* out);

// RAII snapshot: captures `*counters` at construction; Delta() returns the
// difference accumulated since. Works on both plain counters and the
// registry-bound aggregate (each access Sync()s the source first).
class CounterDelta {
 public:
  explicit CounterDelta(const Counters* counters) : counters_(counters) {
    counters_->Sync();
    base_ = *counters_;
  }

  Counters Delta() const {
    counters_->Sync();
    return *counters_ - base_;
  }
  void Rebase() {
    counters_->Sync();
    base_ = *counters_;
  }

 private:
  const Counters* counters_;
  Counters base_;
};

}  // namespace pmemsim

#endif  // SRC_TRACE_COUNTERS_H_
