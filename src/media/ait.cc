#include "src/media/ait.h"

#include "src/common/check.h"

namespace pmemsim {

Ait::Ait(uint64_t coverage_bytes, Cycles miss_penalty, Counters* counters)
    : capacity_(static_cast<size_t>(coverage_bytes / kPageSize)),
      miss_penalty_(miss_penalty),
      counters_(counters) {
  PMEMSIM_CHECK(capacity_ > 0);
  PMEMSIM_CHECK(counters_ != nullptr);
}

Cycles Ait::Access(Addr addr) {
  const Addr page = PageBase(addr);
  auto it = map_.find(page);
  if (it != map_.end()) {
    ++counters_->ait_hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  ++counters_->ait_misses;
  Touch(page);
  return miss_penalty_;
}

void Ait::Touch(Addr page) {
  if (map_.size() >= capacity_) {
    const Addr victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
}

}  // namespace pmemsim
