# Empty compiler generated dependencies file for pmdk_style.
# This may be replaced when dependencies are built.
