// A FlatStore-style log-structured KV store (paper §5 related work; §3.2's
// programming guideline made concrete): small records are staged in DRAM and
// written to PM as full, XPLine-aligned 256 B batches with non-temporal
// stores — one persist fence per batch instead of per record. Full-XPLine
// writes never trigger read-modify-write on the media, so the write
// amplification of small-record workloads drops from ~4x to ~1x.
//
// Layout: an append-only PM log of 64 B record slots.
//   [0..8) key | [8..12) payload length (<= 44) | [12..16) kRecordMagic
//   [16..16+len) payload
// A batch is 4 slots = one XPLine. The volatile index (key -> newest record
// address) lives in DRAM and is rebuilt by Recover() after a crash; records
// staged but not yet flushed are lost on a crash (the FlatStore tradeoff —
// call Flush() to force a durability point).

#ifndef SRC_DATASTORES_FLAT_LOG_H_
#define SRC_DATASTORES_FLAT_LOG_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/core/system.h"
#include "src/cpu/thread_context.h"

namespace pmemsim {

class FlatLog {
 public:
  static constexpr uint64_t kSlotSize = kCacheLineSize;
  static constexpr uint64_t kSlotsPerBatch = kLinesPerXPLine;
  static constexpr uint32_t kMaxPayload = 44;
  static constexpr uint32_t kRecordMagic = 0x464C4154;  // "FLAT"

  // `log_region` must be PM and XPLine aligned.
  FlatLog(System* system, PmRegion log_region);

  // Appends key -> value. The record becomes durable when its batch flushes
  // (every 4th record, or at Flush()). Returns false when the log is full.
  bool Put(ThreadContext& ctx, uint64_t key, const void* value, uint32_t len);

  // Reads the newest value for `key` into `out` (sized >= kMaxPayload).
  bool Get(ThreadContext& ctx, uint64_t key, void* out, uint32_t* len_out);

  // Pads and persists the current partial batch (a durability point).
  void Flush(ThreadContext& ctx);

  // Rebuilds the volatile index by scanning the log (newest record per key
  // wins). Returns the number of records indexed.
  size_t Recover(ThreadContext& ctx);

  uint64_t records_appended() const { return appended_; }
  uint64_t capacity_slots() const { return region_.size / kSlotSize; }

 private:
  Addr SlotAddr(uint64_t index) const { return region_.base + index * kSlotSize; }
  void FlushBatch(ThreadContext& ctx);

  System* system_;
  PmRegion region_;
  std::unordered_map<uint64_t, Addr> index_;  // volatile (DRAM) index
  std::vector<uint8_t> staged_;               // DRAM staging buffer, <= 1 XPLine
  uint64_t next_slot_ = 0;
  uint64_t appended_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_DATASTORES_FLAT_LOG_H_
