#include "src/trace/trace_events.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/trace/json.h"

namespace pmemsim {

namespace {
// Capture-unwind hook: when a sweep point CHECK-fails under failure isolation
// (or a hard CHECK aborts the process), flush whatever events were buffered
// so the partial trace reaches disk instead of dying with the run. A later
// successful Flush/Disable simply rewrites the file.
void FlushTraceOnUnwind() {
  TraceEmitter& trace = TraceEmitter::Global();
  if (trace.enabled()) {
    trace.Flush();
  }
}
}  // namespace

TraceEmitter& TraceEmitter::Global() {
  static TraceEmitter instance;
  return instance;
}

void TraceEmitter::Enable(const std::string& path) {
  // Installed for the process lifetime; the hook no-ops while disabled.
  SetCaptureUnwindHook(&FlushTraceOnUnwind);
  std::lock_guard<std::mutex> lock(mu_);
  path_ = path;
  enabled_.store(true, std::memory_order_relaxed);
  events_.clear();
  dropped_ = 0;
  if (tracks_.empty()) {
    tracks_.push_back("sim");
  }
}

bool TraceEmitter::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  const bool ok = enabled_.load(std::memory_order_relaxed) ? FlushLocked() : true;
  enabled_.store(false, std::memory_order_relaxed);
  events_.clear();
  return ok;
}

int TraceEmitter::RegisterTrack(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tracks_.empty()) {
    tracks_.push_back("sim");
  }
  // Benches construct a fresh System per data point; each re-registers its
  // DIMM tracks. Suffix repeats so the viewer rows stay distinguishable.
  size_t repeats = 0;
  for (const std::string& t : tracks_) {
    if (t == name || t.rfind(name + "#", 0) == 0) {
      ++repeats;
    }
  }
  tracks_.push_back(repeats == 0 ? name : name + "#" + std::to_string(repeats));
  return static_cast<int>(tracks_.size()) - 1;
}

void TraceEmitter::Push(Event e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void TraceEmitter::Instant(int track, const std::string& name, Cycles ts) {
  Push(Event{'i', track, name, ts});
}

void TraceEmitter::Instant(int track, const std::string& name, Cycles ts,
                           const std::string& arg_name, double arg_value) {
  Event e{'i', track, name, ts};
  e.has_arg = true;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  Push(std::move(e));
}

void TraceEmitter::CounterEvent(int track, const std::string& name, Cycles ts, double value) {
  Event e{'C', track, name, ts};
  e.has_arg = true;
  e.arg_name = "value";
  e.arg_value = value;
  Push(std::move(e));
}

size_t TraceEmitter::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t TraceEmitter::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool TraceEmitter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

bool TraceEmitter::FlushLocked() {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ns");
  w.Key("traceEvents").BeginArray();
  // Track-name metadata events so the viewer labels each row.
  for (size_t i = 0; i < tracks_.size(); ++i) {
    w.BeginObject();
    w.Key("ph").Value("M");
    w.Key("name").Value("thread_name");
    w.Key("pid").Value(0);
    w.Key("tid").Value(static_cast<uint64_t>(i));
    w.Key("args").BeginObject().Key("name").Value(tracks_[i]).EndObject();
    w.EndObject();
  }
  for (const Event& e : events_) {
    w.BeginObject();
    w.Key("ph").Value(std::string(1, e.phase));
    w.Key("name").Value(e.name);
    w.Key("cat").Value("pmemsim");
    w.Key("ts").Value(static_cast<uint64_t>(e.ts));
    w.Key("pid").Value(0);
    w.Key("tid").Value(e.track);
    if (e.phase == 'i') {
      w.Key("s").Value("t");  // thread-scoped instant
    }
    if (e.has_arg) {
      w.Key("args").BeginObject().Key(e.arg_name).Value(e.arg_value).EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  if (dropped_ > 0) {
    w.Key("pmemsim_dropped_events").Value(dropped_);
  }
  w.EndObject();

  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string& text = w.str();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace pmemsim
