#include "src/crash/persist_tracker.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/imc/memory_controller.h"

namespace pmemsim {

PersistTracker::~PersistTracker() {
  if (system_ != nullptr) {
    system_->SetPersistObserver(nullptr);
    system_->mc().SetPersistWriteHook({});
  }
}

void PersistTracker::Attach(System* system) {
  PMEMSIM_CHECK(system != nullptr);
  PMEMSIM_CHECK_MSG(system_ == nullptr, "tracker is already attached");
  system_ = system;
  system_->SetPersistObserver(this);
  system_->mc().SetPersistWriteHook(
      [this](Addr line, Cycles issue, Cycles accepted_at, Cycles drained_at) {
        OnPmWrite(line, issue, accepted_at, drained_at);
      });
}

void PersistTracker::OnStore(Addr addr, uint64_t len, Cycles now) {
  (void)now;
  if (MemoryController::KindOf(addr) != MemoryKind::kOptane || len == 0) {
    return;
  }
  if (eadr_) {
    // The caches are inside the persistence domain: the store is durable the
    // moment it retires, so snapshot the bytes now.
    Record rec;
    rec.addr = addr;
    rec.len = static_cast<uint32_t>(len);
    rec.retired_store = true;
    rec.data.resize(len);
    system_->backing().Read(addr, rec.data.data(), len);
    records_.push_back(std::move(rec));
    return;
  }
  // ADR: the bytes sit in a volatile cache until a write-back reaches the
  // iMC. Track the dirty lines for the vulnerable-byte statistics.
  const Addr first = CacheLineBase(addr);
  const Addr last = CacheLineBase(addr + len - 1);
  for (Addr line = first; line <= last; line += kCacheLineSize) {
    dirty_lines_.insert(line);
  }
  PurgeMatured(now);
  SampleWindow();
}

void PersistTracker::OnPmWrite(Addr line, Cycles issue, Cycles accepted_at,
                               Cycles drained_at) {
  Record rec;
  rec.addr = line;
  rec.len = kCacheLineSize;
  rec.accepted_at = accepted_at;
  rec.data.resize(kCacheLineSize);
  system_->backing().Read(line, rec.data.data(), kCacheLineSize);
  records_.push_back(std::move(rec));

  if (!eadr_) {
    dirty_lines_.erase(line);  // the line left the cache hierarchy
    ++inflight_[line];
    accept_fifo_.emplace_back(line, accepted_at);
  }
  // Sample at issue time: the new line sits in the WPQ entry path, not yet
  // accepted (issue < accepted_at), which is exactly the vulnerable moment.
  PurgeMatured(issue);
  SampleWindow();
  // Each iMC write contributes two crash points: the instant the WPQ accepts
  // it (its ADR persist point) and the instant it drains to the DIMM buffer.
  NoteEvent(CrashEventKind::kWpqAccept, accepted_at);
  NoteEvent(CrashEventKind::kWpqDrain, drained_at);
}

void PersistTracker::OnFence(Cycles now) {
  PurgeMatured(now);
  SampleWindow();
  NoteEvent(CrashEventKind::kFence, now);
}

void PersistTracker::PurgeMatured(Cycles now) {
  accept_watermark_ = std::max(accept_watermark_, now);
  // Retire every pending write the WPQ has accepted by the watermark.
  auto matured = [this](const std::pair<Addr, Cycles>& p) {
    if (p.second > accept_watermark_) {
      return false;
    }
    auto it = inflight_.find(p.first);
    if (it != inflight_.end() && --it->second == 0) {
      inflight_.erase(it);
    }
    return true;
  };
  accept_fifo_.erase(std::remove_if(accept_fifo_.begin(), accept_fifo_.end(), matured),
                     accept_fifo_.end());
}

void PersistTracker::SampleWindow() {
  ++stats_.samples;
  uint64_t in_cache = 0, in_wpq = 0, overlap = 0;
  if (!eadr_) {
    in_cache = kCacheLineSize * dirty_lines_.size();
    in_wpq = kCacheLineSize * inflight_.size();
    for (const auto& [addr, count] : inflight_) {
      if (dirty_lines_.count(addr) != 0) {
        overlap += kCacheLineSize;  // re-dirtied while still in flight
      }
    }
  }
  const uint64_t vulnerable = in_cache + in_wpq - overlap;
  stats_.max_in_cache_bytes = std::max(stats_.max_in_cache_bytes, in_cache);
  stats_.max_in_wpq_bytes = std::max(stats_.max_in_wpq_bytes, in_wpq);
  stats_.max_vulnerable_bytes = std::max(stats_.max_vulnerable_bytes, vulnerable);
  stats_.sum_vulnerable_bytes += vulnerable;
}

void PersistTracker::NoteEvent(CrashEventKind kind, Cycles now) {
  if (injector_ == nullptr) {
    return;  // events only exist once StartEvents() has been called
  }
  ++stats_.events;
  PurgeMatured(now);
  injector_->OnEvent(kind, now);  // may throw CrashSignal
}

PersistTracker::MaterializeResult PersistTracker::Materialize(
    BackingStore* out, Cycles crash_now, uint64_t tear_seed,
    TearGranularity granularity) const {
  PMEMSIM_CHECK(out != nullptr);
  MaterializeResult result;
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& rec = records_[i];
    const bool durable = eadr_ || rec.retired_store || rec.accepted_at <= crash_now;
    if (durable) {
      out->Write(rec.addr, rec.data.data(), rec.len);
      ++result.durable_writes;
      continue;
    }
    // In flight to the iMC at the crash: a per-record seeded draw decides its
    // fate. Index-keyed so the outcome is independent of crash_now and
    // reproducible across runs.
    ++result.inflight_writes;
    Rng rng(Mix64(tear_seed + 0x9E3779B97F4A7C15ull * (i + 1)));
    const uint64_t fate = rng.NextBelow(3);
    if (fate == 0) {
      out->Write(rec.addr, rec.data.data(), rec.len);
      ++result.survived_writes;
    } else if (fate == 1) {
      ++result.lost_writes;  // the old bytes stay
    } else {
      // Torn: each aligned 8-byte word lands independently (the x86 failure-
      // atomicity unit); sub-word mode additionally allows a byte prefix.
      ++result.torn_writes;
      for (uint32_t off = 0; off < rec.len; off += 8) {
        const uint32_t span = std::min<uint32_t>(8, rec.len - off);
        if ((rng.Next() & 1) != 0) {
          out->Write(rec.addr + off, rec.data.data() + off, span);
        } else if (granularity == TearGranularity::kSubword) {
          const uint32_t prefix =
              std::min<uint32_t>(static_cast<uint32_t>(rng.NextBelow(9)), span);
          if (prefix > 0) {
            out->Write(rec.addr + off, rec.data.data() + off, prefix);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace pmemsim
