// Ablation: how much of the "consistent write latency" finding (paper §3.6)
// rests on the WPQ and the asynchronous drain?
//
// Sweeps the WPQ depth for the pure-write workload of Fig. 8(c). A deep WPQ
// keeps per-element write latency flat across WSS (acceptance is the persist
// point); a shallow WPQ exposes the media write latency as soon as the
// working set spills the write buffer.
//
// Output: CSV  wpq_entries,wss_kb,cycles_per_element

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/config.h"
#include "src/core/system.h"
#include "src/datastores/chase_list.h"

namespace {

using namespace pmemsim;

double Measure(uint32_t wpq_entries, uint64_t wss) {
  PlatformConfig cfg = G1Platform();
  cfg.imc.wpq_entries = wpq_entries;
  auto system = std::make_unique<System>(cfg, 1);
  ThreadContext& ctx = system->CreateThread();
  const PmRegion region = system->AllocatePm(wss, kXPLineSize);
  ChaseList list(system.get(), region, /*sequential=*/false, 0xAB);
  list.PureWrite(ctx, 4000, PersistMode::kClwbSfence, Persistency::kStrict);
  const Cycles t = list.PureWrite(ctx, 8000, PersistMode::kClwbSfence, Persistency::kStrict);
  return static_cast<double>(t) / 8000.0;
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("usage: ablation_wpq_depth\n%s", pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  pmemsim_bench::BenchReport report(flags, "ablation_wpq_depth");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();
  pmemsim_bench::PrintHeader("Ablation", "WPQ depth vs write-latency consistency (Fig. 8c)");
  std::printf("wpq_entries,wss_kb,cycles_per_element\n");
  for (const uint32_t entries : {1u, 4u, 16u, 64u}) {
    for (const uint64_t kb : {4ull, 16ull, 64ull, 256ull, 1024ull, 4096ull}) {
      const std::string label =
          "wpq" + std::to_string(entries) + "/" + std::to_string(kb) + "kb";
      runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
        const double cycles = Measure(entries, KiB(kb));
        point.Printf("%u,%llu,%.1f\n", entries, static_cast<unsigned long long>(kb), cycles);
        point.AddRow().Set("wpq_entries", entries).Set("wss_kb", kb).Set("cycles_per_element",
                                                                         cycles);
      });
    }
  }
  return runner.Finish(report);
}
