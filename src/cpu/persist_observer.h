// Observer interface for the store/fence path of a ThreadContext.
//
// The crash-consistency subsystem (src/crash) implements this to maintain a
// shadow durable image: OnStore fires after a cached store's data lands in
// the backing store (the line is dirty in the volatile caches from this
// moment), OnFence fires after a fence completes (every outstanding persist
// of the thread has been WPQ-accepted by then). Persist-path writes reaching
// the iMC (clwb write-backs, nt-stores, dirty evictions) are observed
// separately through MemoryController::SetPersistWriteHook — together the two
// hooks see every transition a byte makes on its way to the ADR domain.
//
// Observers may throw (the crash injector aborts a run by throwing from a
// hook); the simulator makes no attempt to keep going afterwards.

#ifndef SRC_CPU_PERSIST_OBSERVER_H_
#define SRC_CPU_PERSIST_OBSERVER_H_

#include <cstdint>

#include "src/common/types.h"

namespace pmemsim {

class PersistObserver {
 public:
  virtual ~PersistObserver() = default;

  // A cached store of `len` bytes at `addr` retired at `now` (data is in the
  // caches and the backing store, but not yet on the persist path).
  virtual void OnStore(Addr addr, uint64_t len, Cycles now) = 0;

  // An sfence/mfence completed at `now`: every persist the thread issued
  // before the fence has been accepted into the ADR domain.
  virtual void OnFence(Cycles now) = 0;
};

}  // namespace pmemsim

#endif  // SRC_CPU_PERSIST_OBSERVER_H_
