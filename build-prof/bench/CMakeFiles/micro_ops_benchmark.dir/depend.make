# Empty dependencies file for micro_ops_benchmark.
# This may be replaced when dependencies are built.
