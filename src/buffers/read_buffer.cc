#include "src/buffers/read_buffer.h"

#include "src/common/check.h"

namespace pmemsim {

ReadBuffer::ReadBuffer(uint64_t capacity_bytes, Counters* counters,
                       ReadBufferEviction eviction, bool exclusive)
    : counters_(counters),
      eviction_(eviction),
      exclusive_(exclusive),
      slots_(static_cast<size_t>(capacity_bytes / kXPLineSize)) {
  PMEMSIM_CHECK(!slots_.empty());
  PMEMSIM_CHECK(counters_ != nullptr);
  map_.Reserve(slots_.size());
  free_.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    free_.push_back(static_cast<uint32_t>(i));
  }
}

bool ReadBuffer::Probe(Addr line_addr) const {
  const uint32_t* pos = map_.Find(XPLineBase(line_addr));
  if (pos == nullptr) {
    return false;
  }
  return (slots_[*pos].valid_mask >> LineIndexInXPLine(line_addr)) & 1u;
}

bool ReadBuffer::ConsumeLine(Addr line_addr) {
  const uint32_t* pos = map_.Find(XPLineBase(line_addr));
  if (pos == nullptr) {
    ++counters_->read_buffer_misses;
    return false;
  }
  Slot& slot = slots_[*pos];
  const uint8_t bit = static_cast<uint8_t>(1u << LineIndexInXPLine(line_addr));
  if (!(slot.valid_mask & bit)) {
    ++counters_->read_buffer_misses;
    return false;
  }
  if (exclusive_) {
    // Exclusive with the CPU caches: once a line moves up, drop our copy.
    slot.valid_mask = static_cast<uint8_t>(slot.valid_mask & ~bit);
  }
  if (eviction_ == ReadBufferEviction::kLru) {
    LruUnlink(*pos);
    LruPushFront(*pos);
  }
  ++counters_->read_buffer_hits;
  return true;
}

uint32_t ReadBuffer::PopFree() {
  while (free_head_ < free_.size()) {
    const uint32_t v = free_[free_head_++];
    if (free_head_ == free_.size()) {
      free_.clear();
      free_head_ = 0;
    }
    if (!slots_[v].in_use) {
      return v;
    }
  }
  return kNil;
}

size_t ReadBuffer::PickVictim() {
  // Reuse slots vacated by Remove (and virgin slots at start-up) before
  // evicting anything live. Before this, FIFO advanced its hand blindly and
  // could evict a resident XPLine while a freed slot sat idle.
  if (const uint32_t freed = PopFree(); freed != kNil) {
    return freed;
  }
  if (eviction_ == ReadBufferEviction::kFifo) {
    const size_t v = next_fill_;
    next_fill_ = (next_fill_ + 1) % slots_.size();
    return v;
  }
  PMEMSIM_DCHECK(lru_tail_ != kNil);
  return lru_tail_;  // exact least-recently-touched slot
}

void ReadBuffer::LruUnlink(uint32_t i) {
  Slot& s = slots_[i];
  if (s.lru_prev != kNil) {
    slots_[s.lru_prev].lru_next = s.lru_next;
  } else if (lru_head_ == i) {
    lru_head_ = s.lru_next;
  }
  if (s.lru_next != kNil) {
    slots_[s.lru_next].lru_prev = s.lru_prev;
  } else if (lru_tail_ == i) {
    lru_tail_ = s.lru_prev;
  }
  s.lru_prev = kNil;
  s.lru_next = kNil;
}

void ReadBuffer::LruPushFront(uint32_t i) {
  Slot& s = slots_[i];
  s.lru_prev = kNil;
  s.lru_next = lru_head_;
  if (lru_head_ != kNil) {
    slots_[lru_head_].lru_prev = i;
  }
  lru_head_ = i;
  if (lru_tail_ == kNil) {
    lru_tail_ = i;
  }
}

void ReadBuffer::Fill(Addr addr) { (void)FillSlot(addr); }

uint32_t ReadBuffer::FillSlot(Addr addr) {
  const Addr xpline = XPLineBase(addr);
  if (const uint32_t* pos = map_.Find(xpline)) {
    // Refetch of an XPLine still occupying a slot: refresh in place.
    slots_[*pos].valid_mask = 0x0F;
    if (eviction_ == ReadBufferEviction::kLru) {
      LruUnlink(*pos);
      LruPushFront(*pos);
    }
    return *pos;
  }
  const size_t victim = PickVictim();
  Slot& slot = slots_[victim];
  if (slot.in_use) {
    map_.Erase(slot.xpline);
    if (eviction_ == ReadBufferEviction::kLru) {
      LruUnlink(static_cast<uint32_t>(victim));
    }
  }
  slot.xpline = xpline;
  slot.valid_mask = 0x0F;
  slot.in_use = true;
  if (eviction_ == ReadBufferEviction::kLru) {
    LruPushFront(static_cast<uint32_t>(victim));
  }
  map_[xpline] = static_cast<uint32_t>(victim);
  return static_cast<uint32_t>(victim);
}

void ReadBuffer::FillForDelivery(Addr line_addr) {
  const uint32_t filled = FillSlot(line_addr);
  if (exclusive_) {
    Slot& slot = slots_[filled];
    const uint8_t bit = static_cast<uint8_t>(1u << LineIndexInXPLine(line_addr));
    PMEMSIM_DCHECK(slot.valid_mask & bit);
    slot.valid_mask = static_cast<uint8_t>(slot.valid_mask & ~bit);
  }
}

bool ReadBuffer::ContainsXPLine(Addr addr) const {
  const uint32_t* pos = map_.Find(XPLineBase(addr));
  return pos != nullptr && slots_[*pos].valid_mask != 0;
}

bool ReadBuffer::Remove(Addr addr) {
  const uint32_t* pos = map_.Find(XPLineBase(addr));
  if (pos == nullptr) {
    return false;
  }
  const uint32_t i = *pos;
  slots_[i].in_use = false;
  slots_[i].valid_mask = 0;
  if (eviction_ == ReadBufferEviction::kLru) {
    LruUnlink(i);
  }
  map_.Erase(slots_[i].xpline);
  free_.push_back(i);
  return true;
}

void ReadBuffer::Clear() {
  for (Slot& s : slots_) {
    s = Slot{};
  }
  map_.Clear();
  next_fill_ = 0;
  free_.clear();
  free_head_ = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    free_.push_back(static_cast<uint32_t>(i));
  }
  lru_head_ = kNil;
  lru_tail_ = kNil;
}

}  // namespace pmemsim
