file(REMOVE_RECURSE
  "CMakeFiles/flat_log_test.dir/flat_log_test.cc.o"
  "CMakeFiles/flat_log_test.dir/flat_log_test.cc.o.d"
  "flat_log_test"
  "flat_log_test.pdb"
  "flat_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
