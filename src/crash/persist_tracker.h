// PersistTracker: a shadow durable image of persistent memory.
//
// The tracker observes the store path from two hooks:
//  - ThreadContext's PersistObserver (every retired store + every fence), and
//  - MemoryController's persist-write hook (every cacheline that reaches an
//    Optane iMC: clwb/clflushopt write-backs, nt-stores, dirty L3 evictions).
//
// From those it keeps an ordered record of every PM write with the cycle at
// which the write becomes crash-proof:
//  - ADR platforms: a write is durable once the WPQ *accepts* it
//    (accepted_at); everything still in the cache hierarchy or in flight to
//    the iMC is lost on power failure, and an in-flight line may tear.
//  - eADR platforms (PlatformConfig::eadr_enabled): the persistence domain
//    includes the caches, so a store is durable the moment it retires.
//
// Materialize() replays the record list up to a crash cycle into a fresh
// BackingStore, producing exactly the bytes a real machine would find after
// the power came back: durable writes applied in full, in-flight writes
// individually surviving / lost / torn under a seeded deterministic draw.
// Tearing respects the x86 8-byte failure-atomicity unit by default, with an
// optional sub-8-byte (per-byte prefix) mode.
//
// The tracker also feeds the CrashInjector: after StartEvents(), every WPQ
// accept, WPQ drain, and fence completion becomes a numbered crash point.
// Independently of the injector, the vulnerable-byte window (in-cache vs
// in-WPQ bytes not yet durable) is sampled at every tracked write and fence.

#ifndef SRC_CRASH_PERSIST_TRACKER_H_
#define SRC_CRASH_PERSIST_TRACKER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/backing_store.h"
#include "src/common/types.h"
#include "src/core/system.h"
#include "src/crash/crash_injector.h"
#include "src/cpu/persist_observer.h"

namespace pmemsim {

class PersistTracker : public PersistObserver {
 public:
  // How in-flight writes may tear in Materialize().
  enum class TearGranularity : uint8_t {
    kWord,     // each aligned 8-byte word survives or not atomically
    kSubword,  // a torn word may additionally keep only a byte prefix
  };

  struct Stats {
    uint64_t events = 0;                 // crash points seen since StartEvents
    uint64_t samples = 0;                // window samples (every tracked write/fence)
    uint64_t max_in_cache_bytes = 0;     // dirty PM lines not yet at the iMC
    uint64_t max_in_wpq_bytes = 0;       // lines issued to the iMC, not accepted
    uint64_t max_vulnerable_bytes = 0;   // union of the two, per sample
    uint64_t sum_vulnerable_bytes = 0;   // across samples (for the mean)
    double MeanVulnerableBytes() const {
      return samples == 0 ? 0.0 : static_cast<double>(sum_vulnerable_bytes) /
                                      static_cast<double>(samples);
    }
  };

  struct MaterializeResult {
    uint64_t durable_writes = 0;   // applied in full (matured or eADR)
    uint64_t inflight_writes = 0;  // subject to the survive/lose/tear draw
    uint64_t survived_writes = 0;
    uint64_t lost_writes = 0;
    uint64_t torn_writes = 0;
  };

  explicit PersistTracker(bool eadr_enabled) : eadr_(eadr_enabled) {}
  ~PersistTracker() override;

  PersistTracker(const PersistTracker&) = delete;
  PersistTracker& operator=(const PersistTracker&) = delete;

  // Installs this tracker as `system`'s persist observer and iMC write hook.
  // Attach before the workload's first PM write (ideally right after
  // constructing the System) so the durable image is complete.
  void Attach(System* system);

  // Begins forwarding crash events to `injector` and accumulating vulnerable-
  // byte stats. Call after workload Setup() so that setup-phase persists are
  // recorded (they shape the image) but are not crash points.
  void StartEvents(CrashInjector* injector) { injector_ = injector; }

  // PersistObserver:
  void OnStore(Addr addr, uint64_t len, Cycles now) override;
  void OnFence(Cycles now) override;

  // Replays the record list into `out`, modeling a power failure at simulated
  // cycle `crash_now`. Deterministic for a given (records, crash_now,
  // tear_seed, granularity). Under eADR every recorded write is durable and
  // `tear_seed` is unused.
  MaterializeResult Materialize(BackingStore* out, Cycles crash_now, uint64_t tear_seed,
                                TearGranularity granularity) const;

  const Stats& stats() const { return stats_; }
  uint64_t recorded_writes() const { return records_.size(); }

 private:
  struct Record {
    Addr addr = 0;
    uint32_t len = 0;
    // eADR store records are durable unconditionally; iMC records mature at
    // accepted_at (ADR) or are likewise unconditional (eADR).
    bool retired_store = false;
    Cycles accepted_at = 0;
    std::vector<uint8_t> data;
  };

  // MemoryController hook: an Optane-bound cacheline write.
  void OnPmWrite(Addr line, Cycles issue, Cycles accepted_at, Cycles drained_at);
  // Forwards one crash point to the injector (may throw CrashSignal).
  void NoteEvent(CrashEventKind kind, Cycles now);
  // Retires pending writes the WPQ has accepted by `now`.
  void PurgeMatured(Cycles now);
  // Records the current vulnerable-byte window into the stats.
  void SampleWindow();

  bool eadr_;
  System* system_ = nullptr;
  CrashInjector* injector_ = nullptr;
  std::vector<Record> records_;

  // ADR bookkeeping for the vulnerable-byte stats (never used for output
  // iteration, so unordered containers are safe):
  std::unordered_set<Addr> dirty_lines_;            // written, not yet at the iMC
  std::unordered_map<Addr, uint32_t> inflight_;     // at the iMC, not yet accepted
  std::deque<std::pair<Addr, Cycles>> accept_fifo_; // pending accepts by time
  Cycles accept_watermark_ = 0;
  Stats stats_;
};

}  // namespace pmemsim

#endif  // SRC_CRASH_PERSIST_TRACKER_H_
