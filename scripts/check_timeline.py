#!/usr/bin/env python3
"""Validate a pmemsim_serve --timeline_json artifact.

The serve timeline's contract (src/trace/serve_metrics.h) is that the
per-window series is a *partition* of the serve phase: windows tile
[serve_start, end) contiguously with only the final window partial, every
completed/admitted/shed event lands in exactly one window, and the global
per-window view is the exact field-wise merge of the per-shard views. This
script gates those identities in CI from the outside, using only the JSON
artifacts:

  * --timeline: the --timeline_json file ({"points": [...]});
  * --stats:    optionally, the same run's --stats_json report, whose "serve"
                section's whole-run totals must agree with the timeline's.

Checks performed, per point:
  1. schema: config/serve_start/end/truncated/totals/global/shards present,
     every window has index/t_begin/t_end/partial/completed/admitted/shed/
     queue_depth/sojourn_p50|p99|p999;
  2. contiguity: sequential indices, t_begin == previous t_end, first window
     starts at serve_start, last window ends at end, only the last window may
     be partial — for the global series and every shard series;
  3. conservation: per-index global counts == sum over shards, whole-run
     totals == sum over global windows;
  4. quantile sanity: p50 <= p99 <= p999 in every window with completions,
     null quantiles exactly when a window has no completions;
  5. SLO consistency (when present): violations == count of windows with
     slo_violation, burn_rate == violations / windows_with_traffic;
  6. truncated must be false unless --allow-truncated.

Usage:
    check_timeline.py --timeline /tmp/serve_timeline.json \
        [--stats /tmp/serve_stats.json] [--allow-truncated] [--report]
"""

import argparse
import json
import sys

REQUIRED_POINT_KEYS = (
    "schema_version",
    "config",
    "serve_start",
    "end",
    "truncated",
    "totals",
    "global",
    "shards",
)
REQUIRED_CONFIG_KEYS = ("mix", "loop", "store", "engine", "shards", "interval_cycles")
REQUIRED_WINDOW_KEYS = (
    "index",
    "t_begin",
    "t_end",
    "partial",
    "completed",
    "admitted",
    "shed",
    "queue_depth",
    "sojourn_p50",
    "sojourn_p99",
    "sojourn_p999",
)
MERGED_COUNT_KEYS = ("completed", "admitted", "shed", "queue_depth")


def fail(msg):
    sys.exit(f"error: {msg}")


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def check_series(label, windows, serve_start, end, interval):
    """Schema + contiguity for one window series (global or one shard)."""
    if not windows:
        fail(f"{label}: empty window series")
    prev_end = None
    for i, w in enumerate(windows):
        for key in REQUIRED_WINDOW_KEYS:
            if key not in w:
                fail(f"{label} window {i}: missing key {key!r}")
        if w["index"] != i:
            fail(f"{label} window {i}: non-sequential index {w['index']}")
        if prev_end is not None and w["t_begin"] != prev_end:
            fail(
                f"{label} window {i}: t_begin {w['t_begin']} != previous t_end "
                f"{prev_end} (gap/overlap)"
            )
        if w["t_end"] < w["t_begin"]:
            fail(f"{label} window {i}: t_end {w['t_end']} < t_begin {w['t_begin']}")
        width = w["t_end"] - w["t_begin"]
        if i + 1 < len(windows):
            if w["partial"]:
                fail(f"{label} window {i}: marked partial but is not the final window")
            if width != interval:
                fail(f"{label} window {i}: width {width} != interval_cycles {interval}")
        else:
            if w["partial"] != (width < interval):
                fail(f"{label} window {i}: partial flag inconsistent with width {width}")
        quantiles = [w["sojourn_p50"], w["sojourn_p99"], w["sojourn_p999"]]
        if w["completed"] == 0:
            if any(q is not None for q in quantiles):
                fail(f"{label} window {i}: quantiles must be null with 0 completions")
        else:
            if any(q is None for q in quantiles):
                fail(f"{label} window {i}: null quantile with {w['completed']} completions")
            if not quantiles[0] <= quantiles[1] <= quantiles[2]:
                fail(f"{label} window {i}: non-monotone quantiles {quantiles}")
    if windows[0]["t_begin"] != serve_start:
        fail(f"{label}: first window begins at {windows[0]['t_begin']}, not serve_start "
             f"{serve_start}")
    if windows[-1]["t_end"] != end:
        fail(f"{label}: last window ends at {windows[-1]['t_end']}, not end {end}")


def check_point(idx, point, allow_truncated):
    for key in REQUIRED_POINT_KEYS:
        if key not in point:
            fail(f"point {idx}: missing key {key!r}")
    cfg = point["config"]
    for key in REQUIRED_CONFIG_KEYS:
        if key not in cfg:
            fail(f"point {idx}: config missing key {key!r}")
    if "engine_threads" in json.dumps(point):
        fail(f"point {idx}: artifact must not name engine_threads (byte-compare contract)")
    if point["truncated"] and not allow_truncated:
        fail(f"point {idx}: timeline is truncated (pass --allow-truncated to accept)")

    label = f"point {idx} (mix={cfg['mix']},loop={cfg['loop']})"
    interval = cfg["interval_cycles"]
    serve_start, end = point["serve_start"], point["end"]
    g = point["global"]["windows"]
    check_series(f"{label} global", g, serve_start, end, interval)

    shards = point["shards"]
    if len(shards) != cfg["shards"]:
        fail(f"{label}: {len(shards)} shard series for config.shards {cfg['shards']}")
    for s in shards:
        sw = s["windows"]
        check_series(f"{label} shard {s['shard']}", sw, serve_start, end, interval)
        if len(sw) != len(g):
            fail(f"{label} shard {s['shard']}: {len(sw)} windows vs {len(g)} global")

    # Per-window conservation: the global view is the exact shard merge.
    for i, win in enumerate(g):
        for key in MERGED_COUNT_KEYS:
            total = sum(s["windows"][i][key] for s in shards)
            if win[key] != total:
                fail(
                    f"{label} window {i}: global {key} {win[key]} != sum over shards {total}"
                )

    # Whole-run conservation: totals are the column sums of the global series.
    totals = point["totals"]
    for key in ("completed", "admitted", "shed"):
        col = sum(w[key] for w in g)
        if totals[key] != col:
            fail(f"{label}: totals.{key} {totals[key]} != sum over windows {col}")

    # SLO consistency.
    slo = point.get("slo")
    if slo is not None:
        marked = sum(1 for w in g if w.get("slo_violation"))
        if slo["violations"] != marked:
            fail(f"{label}: slo.violations {slo['violations']} != marked windows {marked}")
        if slo["windows"] != len(g):
            fail(f"{label}: slo.windows {slo['windows']} != window count {len(g)}")
        traffic = sum(1 for w in g if w["completed"] > 0)
        if slo["windows_with_traffic"] != traffic:
            fail(
                f"{label}: slo.windows_with_traffic {slo['windows_with_traffic']} != "
                f"{traffic}"
            )
        expected_burn = slo["violations"] / traffic if traffic else 0.0
        if abs(slo["burn_rate"] - expected_burn) > 1e-9:
            fail(f"{label}: burn_rate {slo['burn_rate']} != {expected_burn}")
    return totals


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeline", required=True, help="--timeline_json artifact")
    parser.add_argument(
        "--stats", help="optional --stats_json report to cross-check whole-run totals"
    )
    parser.add_argument(
        "--allow-truncated",
        action="store_true",
        help="accept truncated timelines (failed-point flush artifacts)",
    )
    parser.add_argument("--report", action="store_true", help="print per-point summaries")
    args = parser.parse_args()

    artifact = load_json(args.timeline)
    points = artifact.get("points")
    if artifact.get("bench") != "pmemsim_serve" or not isinstance(points, list) or not points:
        fail(f"{args.timeline}: not a pmemsim_serve timeline artifact")

    serve_sections = None
    if args.stats:
        stats = load_json(args.stats)
        serve_sections = stats.get("serve")
        if not isinstance(serve_sections, list) or len(serve_sections) != len(points):
            fail(f"{args.stats}: 'serve' section missing or misaligned with timeline points")

    checked = 0
    for idx, point in enumerate(points):
        if point is None:
            if not args.allow_truncated:
                fail(f"point {idx}: null (point failed before any flush)")
            continue
        totals = check_point(idx, point, args.allow_truncated)
        if serve_sections is not None and serve_sections[idx] is not None:
            serve = serve_sections[idx]
            expected = serve["global"]
            if totals["completed"] != expected["completed"]:
                fail(
                    f"point {idx}: timeline completed {totals['completed']} != serve "
                    f"section {expected['completed']}"
                )
        if args.report:
            cfg = point["config"]
            print(
                f"point {idx}: mix={cfg['mix']} loop={cfg['loop']} "
                f"windows={len(point['global']['windows'])} "
                f"completed={totals['completed']} shed={totals['shed']}"
            )
        checked += 1

    print(f"{checked} timeline point(s): contiguity, conservation, and merge identities hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
