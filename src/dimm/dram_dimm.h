// Conventional DRAM DIMM model: flat load latency behind a generous port
// pool, synchronous DDR4-style writes with a short visibility lag. Serves as
// the paper's DRAM baseline (Fig. 7 b/d/f/h, Fig. 10 c/d).

#ifndef SRC_DIMM_DRAM_DIMM_H_
#define SRC_DIMM_DRAM_DIMM_H_

#include "src/common/access_record.h"
#include "src/common/config.h"
#include "src/common/flat_map.h"
#include "src/dimm/dimm.h"
#include "src/media/xpoint_media.h"

namespace pmemsim {

class DramDimm : public Dimm {
 public:
  DramDimm(const DramConfig& config, Counters* counters);

  // In-place read: fills complete_at / stalled_for / mem of `out` (which must
  // arrive value-initialized). The virtual Read() wraps this.
  void ReadInto(Addr line_addr, Cycles now, bool ordered, AccessRecord* out);

  DimmReadResult Read(Addr line_addr, Cycles now, bool ordered) override;
  DimmWriteResult Write(Addr line_addr, Cycles now) override;
  MemoryKind kind() const override { return MemoryKind::kDram; }
  Cycles PendingVisibleAt(Addr line_addr) const override {
    const Cycles* visible = pending_visible_.Find(CacheLineBase(line_addr));
    return visible == nullptr ? 0 : *visible;
  }
  Cycles SameLineStallUntil(Addr) const override { return 0; }  // DDR4 merges
  void Reset() override;

 private:
  void MaybeSweep(Cycles now);

  DramConfig config_;
  Counters* counters_;
  PortPool ports_;

  // Lines with a write still propagating (read-after-persist on DRAM is mild
  // but measurable: Fig. 7 b/d). Swept lazily to stay bounded.
  FlatMap<Addr, Cycles> pending_visible_;
};

}  // namespace pmemsim

#endif  // SRC_DIMM_DRAM_DIMM_H_
