#include "src/cpu/scheduler.h"

#include "src/common/check.h"

namespace pmemsim {

Cycles Scheduler::Run(std::vector<SimJob>& jobs) {
  std::vector<bool> done(jobs.size(), false);
  size_t remaining = jobs.size();
  uint64_t stuck_guard = 0;

  while (remaining > 0) {
    // Pick the runnable job with the smallest clock.
    size_t best = jobs.size();
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (!done[i] && (best == jobs.size() || jobs[i].ctx->clock() < jobs[best].ctx->clock())) {
        best = i;
      }
    }
    PMEMSIM_CHECK(best < jobs.size());

    const Cycles before = jobs[best].ctx->clock();
    const StepResult r = jobs[best].step();
    if (r == StepResult::kDone) {
      done[best] = true;
      --remaining;
      stuck_guard = 0;
      continue;
    }
    // Livelock guard: steps must advance time.
    if (jobs[best].ctx->clock() == before) {
      PMEMSIM_CHECK_MSG(++stuck_guard < 1000000, "scheduler livelock: step did not advance clock");
    } else {
      stuck_guard = 0;
    }
  }

  Cycles max_clock = 0;
  for (const SimJob& job : jobs) {
    max_clock = std::max(max_clock, job.ctx->clock());
  }
  return max_clock;
}

}  // namespace pmemsim
