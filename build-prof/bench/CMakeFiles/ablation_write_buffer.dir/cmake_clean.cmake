file(REMOVE_RECURSE
  "CMakeFiles/ablation_write_buffer.dir/ablation_write_buffer.cc.o"
  "CMakeFiles/ablation_write_buffer.dir/ablation_write_buffer.cc.o.d"
  "ablation_write_buffer"
  "ablation_write_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_write_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
