// The pmemsim_crashcheck driver, as a library so the determinism property
// test can invoke the full flag-to-JSON pipeline in-process.
//
// Flow: one calibration run counts the crash events a workload generates and
// measures the vulnerable-byte window; `--points` event indexes are then
// sampled (seeded, replayable) and each becomes one sweep point: re-run the
// workload with the injector armed, materialize the durable image at the
// crash cycle into a fresh System, run recovery, and validate the store's
// crash-consistency contract. Output is CSV on stdout plus the standard
// --stats_json report; rows are byte-identical at any --jobs.

#ifndef TOOLS_CRASHCHECK_LIB_H_
#define TOOLS_CRASHCHECK_LIB_H_

namespace pmemsim_crashcheck {

// Returns the process exit code: 0 clean, 1 when any crash point failed
// validation (or a point crashed the harness), 2 on bad flags (via exit).
int RunCrashcheck(int argc, char** argv);

}  // namespace pmemsim_crashcheck

#endif  // TOOLS_CRASHCHECK_LIB_H_
