// Figure 10 (paper §4.1): CCEH insert latency and throughput with and without
// speculative helper-thread prefetching, on Optane PM and on DRAM, for 1-10
// worker threads.
//
// Expected shapes (paper): on PM the helper improves latency by up to ~36%
// and throughput by up to ~34% consistently across worker counts; on DRAM it
// yields no improvement and mild degradation (random DRAM reads are already
// cheap; the helper only costs SMT resources and bandwidth).
//
// Output: CSV  device,variant,workers,cycles_per_insert,mops

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/config.h"
#include "src/core/platform.h"
#include "src/cpu/scheduler.h"
#include "src/datastores/cceh.h"
#include "src/prefetch/helper_thread.h"
#include "src/workload/ycsb.h"

namespace {

using namespace pmemsim;

struct Result {
  double cycles_per_insert = 0;
  double mops = 0;
};

Result RunCceh(Generation gen, MemoryKind kind, uint32_t workers, bool prefetch,
               uint64_t total_keys, uint32_t depth, bool scaled_cache, uint32_t dimms) {
  PlatformConfig cfg = PlatformFor(gen);
  if (scaled_cache) {
    // Scaled testbed: the paper loads a 256 MB table (~10x the LLC). Keeping
    // that table:LLC ratio at simulator-friendly key counts means shrinking
    // the modeled L3 (see EXPERIMENTS.md).
    cfg.cache.l3.size_bytes = MiB(3);
    cfg.cache.l3.ways = 12;
  }
  auto system = std::make_unique<System>(cfg, dimms);
  ThreadContext& init_ctx = system->CreateThread();
  Cceh table(system.get(), init_ctx, /*initial_depth=*/6, kind);

  const std::vector<uint64_t> keys = MakeLoadKeys(total_keys, /*seed=*/0xF1610);
  const std::vector<std::vector<uint64_t>> shards = ShardKeys(keys, workers);

  std::vector<SimJob> jobs;
  std::vector<std::unique_ptr<SpeculativeHelperPair>> pairs;
  std::vector<size_t> cursors(workers, 0);
  std::vector<ThreadContext*> ctxs;
  for (uint32_t w = 0; w < workers; ++w) {
    ctxs.push_back(&system->CreateThread());
  }
  Cycles start_max = 0;
  for (uint32_t w = 0; w < workers; ++w) {
    start_max = std::max(start_max, ctxs[w]->clock());
  }

  uint64_t inserted = 0;
  if (prefetch) {
    for (uint32_t w = 0; w < workers; ++w) {
      ThreadContext* helper = &system->CreateSmtSibling(*ctxs[w]);
      const auto& shard = shards[w];
      pairs.push_back(std::make_unique<SpeculativeHelperPair>(
          ctxs[w], helper, shard.size(),
          [&table, &shard, &inserted](ThreadContext& ctx, size_t i) {
            table.Insert(ctx, shard[i], shard[i] * 3);
            ++inserted;
          },
          [&table, &shard](ThreadContext& ctx, size_t i) {
            table.PrefetchProbePath(ctx, shard[i]);
          },
          HelperConfig{depth, 1.6}));
      pairs.back()->AppendJobs(jobs);
    }
  } else {
    for (uint32_t w = 0; w < workers; ++w) {
      const auto& shard = shards[w];
      jobs.push_back({ctxs[w], [&, w]() {
                        if (cursors[w] >= shard.size()) {
                          return StepResult::kDone;
                        }
                        const uint64_t key = shard[cursors[w]++];
                        table.Insert(*ctxs[w], key, key * 3);
                        ++inserted;
                        return StepResult::kProgress;
                      }});
    }
  }
  Scheduler::Run(jobs);

  Cycles worker_cycles = 0;
  Cycles end_max = 0;
  for (uint32_t w = 0; w < workers; ++w) {
    worker_cycles += ctxs[w]->clock();
    end_max = std::max(end_max, ctxs[w]->clock());
  }
  const double ghz = gen == Generation::kG1 ? 2.1 : 3.0;
  Result r;
  r.cycles_per_insert = static_cast<double>(worker_cycles) / static_cast<double>(total_keys);
  r.mops = static_cast<double>(inserted) * ghz * 1e3 /
           static_cast<double>(end_max - start_max);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: fig10_cceh_prefetch [--gen=g1|g2] [--keys=600000] [--depth=8] [--dimms=6] "
        "[--max_workers=10]\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const Generation gen = flags.Get("gen", "g1") == "g2" ? Generation::kG2 : Generation::kG1;
  const uint64_t keys = flags.GetU64("keys", 600000);
  const uint32_t depth = static_cast<uint32_t>(flags.GetU64("depth", 8));
  const uint32_t max_workers = static_cast<uint32_t>(flags.GetU64("max_workers", 8));
  const bool scaled_cache = !flags.Has("full_cache");
  const uint32_t dimms = static_cast<uint32_t>(flags.GetU64("dimms", 6));
  pmemsim_bench::BenchReport report(flags, "fig10_cceh_prefetch");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Figure 10", "CCEH with helper-thread prefetching (PM vs DRAM)");
  std::printf("device,variant,workers,cycles_per_insert,mops\n");
  for (const MemoryKind kind : {MemoryKind::kOptane, MemoryKind::kDram}) {
    for (const bool prefetch : {false, true}) {
      for (uint32_t w = 1; w <= max_workers; ++w) {
        const char* device = kind == MemoryKind::kOptane ? "PM" : "DRAM";
        const char* variant = prefetch ? "cceh+prefetch" : "cceh";
        const std::string label =
            std::string(device) + "/" + variant + "/w" + std::to_string(w);
        runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
          const Result r = RunCceh(gen, kind, w, prefetch, keys, depth, scaled_cache, dimms);
          point.Printf("%s,%s,%u,%.0f,%.2f\n", device, variant, w, r.cycles_per_insert, r.mops);
          point.AddRow()
              .Set("device", device)
              .Set("variant", variant)
              .Set("workers", w)
              .Set("cycles_per_insert", r.cycles_per_insert)
              .Set("mops", r.mops);
        });
      }
    }
  }
  return runner.Finish(report);
}
