#include "src/serve/tier.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/cpu/scheduler.h"
#include "src/trace/json.h"

namespace pmemsim {
namespace {

// How far an idle worker advances when its shard has no pending arrival but
// peers still hold requests in flight. Small enough to observe completions
// promptly, large enough not to dominate step counts.
constexpr Cycles kIdleQuantum = 256;

}  // namespace

ServiceTier::ServiceTier(System* system, const ServeConfig& cfg) : system_(system), cfg_(cfg) {
  PMEMSIM_CHECK(cfg_.shards > 0 && cfg_.workers_per_shard > 0);
  shards_.reserve(cfg_.shards);
  workers_.reserve(static_cast<size_t>(cfg_.shards) * cfg_.workers_per_shard);
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    ThreadContext* loader = nullptr;
    for (uint32_t i = 0; i < cfg_.workers_per_shard; ++i) {
      ThreadContext& ctx = system_->CreateThread();
      if (i == 0) {
        loader = &ctx;
      }
      Worker wk;
      wk.ctx = &ctx;
      wk.shard = s;
      workers_.push_back(std::move(wk));
    }
    shards_.push_back(std::make_unique<Shard>(system_, cfg_, s, *loader));
  }
}

void ServiceTier::Run() {
  PMEMSIM_CHECK_MSG(!ran_, "ServiceTier::Run is one-shot");
  ran_ = true;

  // Phase 1: preload, one job per shard on the shard's first worker. All
  // loaders interleave through the shared memory system in clock order.
  std::vector<SimJob> load_jobs;
  for (uint32_t s = 0; s < cfg_.shards; ++s) {
    ThreadContext* ctx = workers_[static_cast<size_t>(s) * cfg_.workers_per_shard].ctx;
    Shard* shard = shards_[s].get();
    load_jobs.push_back(SimJob{ctx, [shard, ctx] {
                                 return shard->LoadStep(*ctx) ? StepResult::kProgress
                                                              : StepResult::kDone;
                               }});
  }
  load_end_ = Scheduler::Run(load_jobs);

  // Align every worker to a common serve-phase origin so queue-wait and
  // sojourn cycles are comparable across shards.
  serve_start_ = load_end_;
  if (timeline_ != nullptr) {
    timeline_->Begin(serve_start_);
    timeline_->AttachGlobalMemSampler(
        &system_->counters(), [this](Cycles now) { return system_->ReadGauges(now); });
    // Surface the tier's aggregate admission-queue occupancy through the
    // System gauge path, so the memory-plane samples carry serve depth too.
    system_->SetExtraGaugeSource([this](Cycles, SampleGauges* g) {
      for (const auto& shard : shards_) {
        g->serve_queue_depth += shard->queue().size();
      }
    });
    for (uint32_t s = 0; s < cfg_.shards; ++s) {
      shards_[s]->SetObservability(timeline_->shard(s), timeline_->spans(s));
    }
  }
  for (Worker& wk : workers_) {
    wk.ctx->AdvanceTo(serve_start_);
    wk.ctx->SetAttribution(&shards_[wk.shard]->attribution());
    // Phase boundary: the trace-visible twin of the queue's BeginPhase()
    // accounting reset inside Shard::StartServing.
    wk.ctx->TraceMarker(kServePhaseMarker);
  }
  for (auto& shard : shards_) {
    shard->StartServing(serve_start_);
  }

  // Phase 2: serve until every shard drains. The global sampler (when a
  // timeline is attached) observes the lockstep minimum clock before every
  // step, giving the same boundary view pmemsim_watch has of a workload.
  std::vector<SimJob> serve_jobs;
  for (Worker& wk : workers_) {
    serve_jobs.push_back(SimJob{wk.ctx, [this, &wk] { return WorkerStep(wk); }});
  }
  const Cycles serve_end =
      Scheduler::Run(serve_jobs, timeline_ != nullptr ? timeline_->global_mem_sampler() : nullptr);

  for (Worker& wk : workers_) {
    wk.ctx->SetAttribution(nullptr);
  }
  for (auto& shard : shards_) {
    shard->FinalizeStats();
  }
  if (timeline_ != nullptr) {
    system_->SetExtraGaugeSource({});
    for (auto& shard : shards_) {
      shard->SetObservability(nullptr, nullptr);
    }
    timeline_->Finalize(serve_end);
  }
}

StepResult ServiceTier::WorkerStep(Worker& wk) {
  Shard& shard = *shards_[wk.shard];
  ThreadContext& ctx = *wk.ctx;
  if (wk.next >= wk.claimed.size()) {
    wk.claimed.clear();
    wk.next = 0;
    // This step begins at the globally minimal clock (lockstep invariant), so
    // folding arrivals <= now here reproduces admission order exactly.
    shard.CatchUpAdmissions(ctx.clock());
    if (shard.ClaimBatch(ctx.clock(), &wk.claimed) == 0) {
      if (shard.Drained()) {
        return StepResult::kDone;
      }
      const auto next = shard.NextArrivalTime();
      ctx.AdvanceTo(next.has_value() ? std::max(*next, ctx.clock() + 1)
                                     : ctx.clock() + kIdleQuantum);
      return StepResult::kProgress;
    }
  }
  const Request r = wk.claimed[wk.next++];
  const Cycles start = ctx.clock();
  shard.BeginSpan();  // snapshot the attribution totals around this Execute
  shard.Execute(ctx, r);
  if (ctx.clock() == start) {
    ctx.AddCompute(1);  // scheduler contract: every step advances the clock
  }
  shard.CompleteRequest(r, start, ctx.clock());
  return StepResult::kProgress;
}

Cycles ServiceTier::end_cycle() const {
  Cycles end = serve_start_;
  for (const auto& shard : shards_) {
    end = std::max(end, shard->stats().last_completion);
  }
  return end;
}

ServiceStats ServiceTier::GlobalStats() const {
  ServiceStats global;
  for (const auto& shard : shards_) {
    global.Merge(shard->stats());
  }
  return global;
}

void ServiceTier::ToJson(JsonWriter& w) const {
  const double ghz = system_->config().cpu_ghz;
  w.BeginObject();
  w.Key("config").BeginObject();
  w.Key("store").Value(StoreName(cfg_.store));
  w.Key("loop").Value(LoopModeName(cfg_.loop));
  w.Key("mix").Value(cfg_.mix_name);
  w.Key("shards").Value(static_cast<uint64_t>(cfg_.shards));
  w.Key("workers_per_shard").Value(static_cast<uint64_t>(cfg_.workers_per_shard));
  w.Key("queue_depth").Value(cfg_.queue_depth);
  w.Key("batch").Value(cfg_.batch);
  w.Key("clients").Value(static_cast<uint64_t>(cfg_.clients));
  w.Key("think_cycles").Value(cfg_.think_cycles);
  w.Key("interarrival_cycles").Value(cfg_.interarrival_cycles);
  w.Key("ops").Value(cfg_.ops);
  w.Key("keys").Value(cfg_.keys);
  w.Key("theta").Value(cfg_.theta);
  w.Key("scan_len").Value(static_cast<uint64_t>(cfg_.scan_len));
  w.Key("seed").Value(cfg_.seed);
  w.EndObject();
  w.Key("load_cycles").Value(static_cast<uint64_t>(load_end_));
  w.Key("serve_start").Value(static_cast<uint64_t>(serve_start_));
  w.Key("end_cycle").Value(static_cast<uint64_t>(end_cycle()));
  w.Key("global");
  GlobalStats().ToJson(w, ghz, serve_start_);
  w.Key("shards").BeginArray();
  for (const auto& shard : shards_) {
    w.BeginObject();
    w.Key("shard").Value(static_cast<uint64_t>(shard->index()));
    w.Key("queue").BeginObject();
    w.Key("depth").Value(static_cast<uint64_t>(shard->queue().depth()));
    w.Key("max_occupancy").Value(shard->queue().max_occupancy());
    w.EndObject();
    w.Key("stats");
    shard->stats().ToJson(w, ghz, serve_start_);
    w.Key("attribution");
    shard->attribution().ToJson(w);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string ServiceTier::ToJson() const {
  JsonWriter w;
  ToJson(w);
  return w.str();
}

}  // namespace pmemsim
