// On-DIMM write-combining buffer (paper §3.2).
//
// Findings modeled here:
//  * ~16 KB of XPLine entries; on G1 only ~12 KB is usable for partially
//    written XPLines (the WA knee at 12 KB in Fig. 3);
//  * two write-back mechanisms on G1: fully written XPLines are flushed to
//    media periodically (~5,000 cycles), partially written XPLines are
//    retained until evicted;
//  * random-victim eviction (the graceful hit-ratio decay of Fig. 4); G1
//    drains a batch on overflow (sharper cliff), G2 evicts one victim;
//  * evicting a partially written XPLine is a read-modify-write: the missing
//    cachelines must be fetched from media (unless the XPLine sits in the
//    read buffer — the §3.3 transition is handled by OptaneDimm).
//
// The buffer never touches the media itself: mutation methods return the set
// of XPLines the owner must write back (and whether each needs an RMW fetch).

#ifndef SRC_BUFFERS_WRITE_BUFFER_H_
#define SRC_BUFFERS_WRITE_BUFFER_H_

#include <cstdint>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/trace/counters.h"

namespace pmemsim {

enum class WriteBufferEviction : uint8_t { kRandom, kOldest };

struct WriteBufferConfig {
  WriteBufferEviction eviction = WriteBufferEviction::kRandom;
  uint64_t capacity_bytes = KiB(16);
  uint32_t partial_reserve_entries = 16;  // entries unusable by partial XPLines
  bool periodic_full_writeback = true;
  Cycles full_writeback_period = 5000;
  bool batch_evict = true;
  double batch_evict_keep_fraction = 0.5;
  uint64_t rng_seed = 0xC0FFEE;
};

// A write-back the owner must perform against the media.
struct WritebackRequest {
  Addr xpline = 0;
  bool needs_rmw = false;  // partially dirty: fetch missing lines first
  bool periodic = false;   // came from the periodic full-line write-back
};

class WriteBuffer {
 public:
  WriteBuffer(const WriteBufferConfig& config, Counters* counters);

  // Records a 64 B write arriving from the WPQ at time `now` that becomes
  // readable at `visible_at`. Appends any required write-backs (evictions
  // needed to make room) to `writebacks`. Returns true if the write merged
  // into a resident entry (a write-buffer hit).
  bool Write(Addr line_addr, Cycles now, Cycles visible_at,
             std::vector<WritebackRequest>& writebacks);

  // Advances the periodic write-back clock; appends due full-line write-backs.
  void Tick(Cycles now, std::vector<WritebackRequest>& writebacks);

  // True if the cacheline's latest value resides in the buffer.
  bool HoldsLine(Addr line_addr) const;

  // True if the XPLine occupies an entry (dirty or clean).
  bool ContainsXPLine(Addr addr) const;

  // Everything the DIMM read path asks of the buffer, answered by a single
  // index probe: HoldsLine, VisibleAt and ContainsXPLine for one cacheline.
  // Semantically identical to calling the three methods back to back.
  struct ReadSnoopResult {
    bool holds_line = false;       // valid data for this cacheline
    bool contains_xpline = false;  // the XPLine occupies an entry
    Cycles visible_at = 0;         // apply time; meaningful only if holds_line
  };
  ReadSnoopResult ReadSnoop(Addr line_addr) const {
    ReadSnoopResult s;
    if (keys_.empty()) {
      return s;  // read-mostly phases: skip the hash probe entirely
    }
    const uint32_t* pos = index_.Find(XPLineBase(line_addr));
    if (pos == nullptr) {
      return s;
    }
    s.contains_xpline = true;
    const Entry& e = entries_[*pos];
    const uint64_t idx = LineIndexInXPLine(line_addr);
    if ((e.valid_mask >> idx) & 1u) {
      s.holds_line = true;
      s.visible_at = e.visible_at[idx];
    }
    return s;
  }

  // True when the periodic write-back clock is due: lets the owner skip the
  // Tick call (and its scratch-vector handling) on the overwhelmingly common
  // not-due reads. Tick itself re-checks, so the gate is purely an early-out.
  bool TickDue(Cycles now) const {
    return config_.periodic_full_writeback &&
           now >= last_periodic_tick_ + config_.full_writeback_period;
  }

  // Time at which the most recent write to this cacheline becomes readable;
  // 0 if the line is not resident (or already visible). Reads to the line
  // must stall until this time (read-after-persist, paper §3.5).
  Cycles VisibleAt(Addr line_addr) const;

  // Installs an XPLine arriving from the read buffer with one line already
  // written (the §3.3 read->write transition). Appends evictions if needed.
  void InstallTransition(Addr line_addr, Cycles now, Cycles visible_at,
                         std::vector<WritebackRequest>& writebacks);

  // Completes a resident entry with the rest of its XPLine fetched from
  // media (the on-demand read-modify-write merge: a read to a not-yet-valid
  // line of a write-buffered XPLine pulls the whole XPLine in). Returns false
  // if the XPLine is not resident.
  bool AbsorbFill(Addr addr);

  // Flushes every dirty entry (used by tests and drain-at-end accounting).
  void DrainAll(std::vector<WritebackRequest>& writebacks);

  void Clear();

  // Host-side hint: warm the index bucket a lookup of `addr` will probe.
  // No simulated effect.
  void PrefetchLookup(Addr addr) const { index_.Prefetch(XPLineBase(addr)); }

  size_t occupied_entries() const { return keys_.size(); }
  size_t capacity_entries() const { return capacity_entries_; }
  size_t partial_capacity_entries() const { return partial_capacity_; }

 private:
  struct Entry {
    uint8_t dirty_mask = 0;   // cachelines holding unwritten-to-media data
    uint8_t valid_mask = 0;   // cachelines whose data the buffer holds
    // Per-cacheline apply times: a persist's visibility is line-granular
    // (reads/persists of one line never wait on a neighbour's apply).
    Cycles visible_at[kLinesPerXPLine] = {0, 0, 0, 0};
    bool clean = false;       // fully written back but still resident
  };

  bool IsPartial(const Entry& e) const { return e.dirty_mask != 0 && e.dirty_mask != 0x0F; }

  size_t CountPartial() const;
  void EvictOne(std::vector<WritebackRequest>& writebacks);
  void EnsureRoom(std::vector<WritebackRequest>& writebacks);
  // Evicts the entry at dense position `pos` (all victim scans already know
  // the position, so no index lookup is needed to translate a key back).
  void EvictVictimAt(size_t pos, std::vector<WritebackRequest>& writebacks);
  // Appends a fresh entry for `xpline` and indexes it.
  void Append(Addr xpline, const Entry& e);
  // Tracks partial_count_ across a dirty-mask change.
  void NotePartialChange(bool was_partial, bool is_partial) {
    if (was_partial != is_partial) {
      partial_count_ += is_partial ? 1 : -1;
    }
  }

  WriteBufferConfig config_;
  Counters* counters_;
  Rng rng_;

  size_t capacity_entries_;
  size_t partial_capacity_;
  Cycles last_periodic_tick_ = 0;

  size_t PickRandomishVictimPos();

  // Dense, insertion-ordered storage: keys_[i] owns entries_[i]. Every
  // ordered walk (periodic write-back, oldest-first/clean-first victim scans,
  // drain) iterates these vectors, so eviction and write-back sequences are a
  // function of operation history alone — never of hash-table order. The
  // flat map only accelerates point lookups (Addr -> dense position).
  std::vector<Addr> keys_;
  std::vector<Entry> entries_;
  FlatMap<Addr, uint32_t> index_;
  // Live count of partially-written resident XPLines (== CountPartial()).
  ptrdiff_t partial_count_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_BUFFERS_WRITE_BUFFER_H_
