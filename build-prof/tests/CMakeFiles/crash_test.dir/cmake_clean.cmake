file(REMOVE_RECURSE
  "CMakeFiles/crash_test.dir/crash_test.cc.o"
  "CMakeFiles/crash_test.dir/crash_test.cc.o.d"
  "crash_test"
  "crash_test.pdb"
  "crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
