file(REMOVE_RECURSE
  "CMakeFiles/datastores_ext_test.dir/datastores_ext_test.cc.o"
  "CMakeFiles/datastores_ext_test.dir/datastores_ext_test.cc.o.d"
  "datastores_ext_test"
  "datastores_ext_test.pdb"
  "datastores_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datastores_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
