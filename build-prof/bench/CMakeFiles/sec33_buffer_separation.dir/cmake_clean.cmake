file(REMOVE_RECURSE
  "CMakeFiles/sec33_buffer_separation.dir/sec33_buffer_separation.cc.o"
  "CMakeFiles/sec33_buffer_separation.dir/sec33_buffer_separation.cc.o.d"
  "sec33_buffer_separation"
  "sec33_buffer_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec33_buffer_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
