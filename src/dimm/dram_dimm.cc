#include "src/dimm/dram_dimm.h"

#include "src/common/check.h"

namespace pmemsim {

DramDimm::DramDimm(const DramConfig& config, Counters* counters)
    : config_(config), counters_(counters), ports_(config.ports, config.port_service) {
  PMEMSIM_CHECK(counters_ != nullptr);
}

DimmReadResult DramDimm::Read(Addr addr, Cycles now, bool ordered) {
  const Addr line = CacheLineBase(addr);
  counters_->dram_read_bytes += kCacheLineSize;

  DimmReadResult result;
  Cycles start = now;
  if (const Cycles* pending = pending_visible_.Find(line)) {
    Cycles visible = *pending;
    if (!ordered && visible > now) {
      visible =
          visible > config_.unordered_read_overlap ? visible - config_.unordered_read_overlap : 0;
    }
    if (visible > now) {
      result.stalled_for = visible - now;
      counters_->rap_stall_cycles += result.stalled_for;
      ++counters_->rap_stalled_loads;
      start = visible;
    }
    if (*pending <= now) {
      pending_visible_.Erase(line);
    }
  }
  result.complete_at = ports_.Schedule(start, config_.load_latency);
  result.stages.rap_stall = result.stalled_for;
  result.stages.dram = result.complete_at - start;
  return result;
}

DimmWriteResult DramDimm::Write(Addr addr, Cycles now) {
  const Addr line = CacheLineBase(addr);
  counters_->dram_write_bytes += kCacheLineSize;
  const Cycles visible_at = now + config_.write_visible_delay;
  pending_visible_[line] = visible_at;
  MaybeSweep(now);
  return {visible_at, 0};
}

void DramDimm::MaybeSweep(Cycles now) {
  if (pending_visible_.size() < 65536) {
    return;
  }
  pending_visible_.EraseIf([now](Addr, Cycles visible) { return visible <= now; });
}

void DramDimm::Reset() {
  ports_.Reset();
  pending_visible_.Clear();
}

}  // namespace pmemsim
