file(REMOVE_RECURSE
  "CMakeFiles/crashcheck_property_test.dir/crashcheck_property_test.cc.o"
  "CMakeFiles/crashcheck_property_test.dir/crashcheck_property_test.cc.o.d"
  "crashcheck_property_test"
  "crashcheck_property_test.pdb"
  "crashcheck_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crashcheck_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
