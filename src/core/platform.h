// Convenience constructors for the paper's testbed configurations.

#ifndef SRC_CORE_PLATFORM_H_
#define SRC_CORE_PLATFORM_H_

#include <memory>

#include "src/common/config.h"
#include "src/core/system.h"

namespace pmemsim {

// G1 testbed: Xeon Gold 6320 + six 128 GB 100-series Optane DIMMs.
std::unique_ptr<System> MakeG1System(uint32_t optane_dimm_count = 6);

// G2 testbed: Xeon Gold 5317 + six 128 GB 200-series Optane DIMMs.
std::unique_ptr<System> MakeG2System(uint32_t optane_dimm_count = 6);

std::unique_ptr<System> MakeSystem(Generation gen, uint32_t optane_dimm_count = 6);

// Disables/enables every CPU prefetcher on a thread (BIOS-switch equivalent).
void SetPrefetchers(ThreadContext& ctx, bool adjacent, bool dcu, bool stream);

}  // namespace pmemsim

#endif  // SRC_CORE_PLATFORM_H_
