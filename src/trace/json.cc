#include "src/trace/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"

namespace pmemsim {

// --- writer ---

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) {
      out_ += ',';
    }
    has_element_.back() = true;
  }
  started_ = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  PMEMSIM_CHECK(depth_ > 0 && !pending_key_);
  out_ += '}';
  has_element_.pop_back();
  --depth_;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  PMEMSIM_CHECK(depth_ > 0 && !pending_key_);
  out_ += ']';
  has_element_.pop_back();
  --depth_;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  PMEMSIM_CHECK(depth_ > 0 && !pending_key_);
  if (has_element_.back()) {
    out_ += ',';
  }
  has_element_.back() = true;
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& s) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* s) { return Value(std::string(s)); }

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int v) {
  BeforeValue();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  PMEMSIM_CHECK_MSG(!json.empty(), "Raw() requires a complete JSON value");
  BeforeValue();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- parser ---

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Run(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

 private:
  bool Fail(const char* msg) {
    if (error_ != nullptr) {
      *error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(JsonValue* out) {
    auto match = [&](const char* lit) {
      const size_t n = std::strlen(lit);
      if (text_.compare(pos_, n, lit) == 0) {
        pos_ += n;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return Fail("invalid literal");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        fractional = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Fail("invalid number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    out->type = JsonValue::Type::kNumber;
    if (!fractional && token[0] != '-') {
      // Lossless unsigned-integer path (counters exceed 2^53).
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out->is_integer = true;
        out->integer = v;
        out->number = static_cast<double>(v);
        return true;
      }
    }
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Fail("invalid number");
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return Fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs are not needed by our emitters).
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    Consume('[');
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue element;
      SkipWs();
      if (!ParseValue(&element)) {
        return false;
      }
      out->array.push_back(std::move(element));
      SkipWs();
      if (Consume(']')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']'");
      }
    }
  }

  bool ParseObject(JsonValue* out) {
    Consume('{');
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}'");
      }
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

bool JsonValue::Parse(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return Parser(text, error).Run(out);
}

}  // namespace pmemsim
