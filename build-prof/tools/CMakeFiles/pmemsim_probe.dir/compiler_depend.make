# Empty compiler generated dependencies file for pmemsim_probe.
# This may be replaced when dependencies are built.
