file(REMOVE_RECURSE
  "CMakeFiles/pmemsim_trace.dir/pmemsim_trace.cc.o"
  "CMakeFiles/pmemsim_trace.dir/pmemsim_trace.cc.o.d"
  "pmemsim_trace"
  "pmemsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
