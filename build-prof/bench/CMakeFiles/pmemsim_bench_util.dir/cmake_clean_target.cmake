file(REMOVE_RECURSE
  "libpmemsim_bench_util.a"
)
