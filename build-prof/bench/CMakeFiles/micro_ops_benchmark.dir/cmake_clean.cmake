file(REMOVE_RECURSE
  "CMakeFiles/micro_ops_benchmark.dir/micro_ops_benchmark.cc.o"
  "CMakeFiles/micro_ops_benchmark.dir/micro_ops_benchmark.cc.o.d"
  "micro_ops_benchmark"
  "micro_ops_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ops_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
