#include "src/crash/workloads.h"

#include <cstring>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/datastores/cceh.h"
#include "src/datastores/fast_fair.h"
#include "src/datastores/flat_log.h"
#include "src/persist/redo_log.h"
#include "src/persist/undo_log.h"

namespace pmemsim {

namespace {

// Non-zero, effectively unique keys/values from the workload seed.
uint64_t KeyAt(uint64_t seed, uint64_t i) { return Mix64(Mix64(seed ^ 0xC4A5) + i) | 1; }
uint64_t ValueAt(uint64_t key) { return Mix64(key ^ 0xABCD) | 1; }

// ---- CCEH: unique-key inserts; splits and directory doubling included. ----
class CcehCrashWorkload : public CrashWorkload {
 public:
  explicit CcehCrashWorkload(const CrashWorkloadOptions& opts) : opts_(opts) {}

  const char* name() const override { return "cceh"; }

  void Setup(System& system, ThreadContext& ctx) override {
    // Start with 2 segments so the run exercises splits and doubling.
    cceh_ = std::make_unique<Cceh>(&system, ctx, /*initial_depth=*/1, MemoryKind::kOptane);
    cceh_->set_skip_persist_for_test(opts_.break_persist);
  }

  void Run(ThreadContext& ctx) override {
    for (uint64_t i = 0; i < opts_.ops; ++i) {
      const uint64_t key = KeyAt(opts_.seed, i);
      const uint64_t value = ValueAt(key);
      exp_.attempted.insert(key);
      cceh_->Insert(ctx, key, value);
      exp_.acked.emplace_back(key, value);
    }
  }

  void Validate(System& fresh, ThreadContext& ctx, ValidationReport* report) override {
    (void)fresh;
    // The volatile directory pointer/depth are consistent at every crash
    // point: DoubleDirectory persists the new directory before switching.
    exp_.directory = cceh_->directory_addr();
    exp_.global_depth = cceh_->global_depth();
    ValidateCceh(ctx, exp_, report);
  }

  uint64_t acked_ops() const override { return exp_.acked.size(); }

 private:
  CrashWorkloadOptions opts_;
  std::unique_ptr<Cceh> cceh_;
  CcehExpectation exp_;
};

// ---- FAST&FAIR: unique-key in-place inserts (the barrier-per-shift mode
// whose torn states the leaf-chain validator filters). ----
class FastFairCrashWorkload : public CrashWorkload {
 public:
  explicit FastFairCrashWorkload(const CrashWorkloadOptions& opts) : opts_(opts) {}

  const char* name() const override { return "fastfair"; }

  void Setup(System& system, ThreadContext& ctx) override {
    tree_ = std::make_unique<FastFairTree>(&system, ctx, MemoryKind::kOptane);
  }

  void Run(ThreadContext& ctx) override {
    for (uint64_t i = 0; i < opts_.ops; ++i) {
      const uint64_t key = KeyAt(opts_.seed, i);
      const uint64_t value = ValueAt(key);
      exp_.attempted.emplace(key, value);
      tree_->Insert(ctx, key, value, BTreeUpdateMode::kInPlace);
      exp_.acked.emplace_back(key, value);
    }
  }

  void Validate(System& fresh, ThreadContext& ctx, ValidationReport* report) override {
    (void)fresh;
    exp_.meta = tree_->meta_addr();
    exp_.max_nodes = tree_->node_count() * 4 + 16;
    ValidateFastFair(ctx, exp_, report);
  }

  uint64_t acked_ops() const override { return exp_.acked.size(); }

 private:
  CrashWorkloadOptions opts_;
  std::unique_ptr<FastFairTree> tree_;
  FastFairExpectation exp_;
};

// ---- FlatLog: batched appends; acked at each batch flush. ----
class FlatLogCrashWorkload : public CrashWorkload {
 public:
  explicit FlatLogCrashWorkload(const CrashWorkloadOptions& opts) : opts_(opts) {}

  const char* name() const override { return "flatlog"; }

  void Setup(System& system, ThreadContext& ctx) override {
    (void)ctx;
    exp_.region = system.AllocatePm(
        AlignUp((opts_.ops + FlatLog::kSlotsPerBatch * 2) * FlatLog::kSlotSize, kXPLineSize),
        kXPLineSize);
    log_ = std::make_unique<FlatLog>(&system, exp_.region);
  }

  void Run(ThreadContext& ctx) override {
    for (uint64_t i = 0; i < opts_.ops; ++i) {
      const uint64_t key = KeyAt(opts_.seed, i);
      const uint32_t len = 8 + static_cast<uint32_t>(i % 24);  // 8..31 <= kMaxPayload
      std::vector<uint8_t> payload(len);
      for (uint32_t j = 0; j < len; ++j) {
        payload[j] = static_cast<uint8_t>(Mix64(key + j));
      }
      // The exact slot image FlushBatch will write for this record.
      std::array<uint8_t, 64> image{};
      std::memcpy(image.data(), &key, sizeof(key));
      std::memcpy(image.data() + 8, &len, sizeof(len));
      const uint32_t magic = FlatLog::kRecordMagic;
      std::memcpy(image.data() + 12, &magic, sizeof(magic));
      std::memcpy(image.data() + 16, payload.data(), len);
      exp_.slot_images.push_back(image);
      exp_.attempted.insert(key);
      pending_kv_.emplace_back(key, payload);

      PMEMSIM_CHECK(log_->Put(ctx, key, payload.data(), len));
      if (log_->records_appended() % FlatLog::kSlotsPerBatch == 0) {
        // The batch flushed inside Put: its 4 records are now acked.
        exp_.acked_slots = log_->records_appended();
        for (auto& kv : pending_kv_) {
          exp_.acked_kv.push_back(std::move(kv));
        }
        pending_kv_.clear();
      }
    }
  }

  void Validate(System& fresh, ThreadContext& ctx, ValidationReport* report) override {
    ValidateFlatLog(&fresh, ctx, exp_, report);
  }

  uint64_t acked_ops() const override { return exp_.acked_kv.size(); }

 private:
  CrashWorkloadOptions opts_;
  std::unique_ptr<FlatLog> log_;
  FlatLogExpectation exp_;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> pending_kv_;
};

// ---- Redo log: transactions of 4 word updates, committed then applied. ----
class RedoCrashWorkload : public CrashWorkload {
 public:
  static constexpr uint64_t kTargets = 64;
  static constexpr uint64_t kUpdatesPerTxn = 4;

  explicit RedoCrashWorkload(const CrashWorkloadOptions& opts) : opts_(opts) {}

  const char* name() const override { return "redo"; }

  void Setup(System& system, ThreadContext& ctx) override {
    (void)ctx;
    const PmRegion data = system.AllocatePm(kTargets * kCacheLineSize, kCacheLineSize);
    for (uint64_t i = 0; i < kTargets; ++i) {
      exp_.targets.push_back(data.At(i * kCacheLineSize));  // one word per line
    }
    exp_.committed.assign(kTargets, 0);
    // Sized so the ring never wraps (epoch stays 1): updates + commits + slack.
    const uint64_t records = opts_.ops + opts_.ops / kUpdatesPerTxn + 8;
    exp_.log_region =
        system.AllocatePm(records * RedoLog::kRecordSize, kCacheLineSize);
    log_ = std::make_unique<RedoLog>(&system, exp_.log_region);
  }

  void Run(ThreadContext& ctx) override {
    Rng rng(Mix64(opts_.seed ^ 0x7ED0));
    const uint64_t txns = opts_.ops / kUpdatesPerTxn;
    for (uint64_t t = 0; t < txns; ++t) {
      uint64_t picked[kUpdatesPerTxn];
      for (uint64_t j = 0; j < kUpdatesPerTxn; ++j) {
        bool fresh_pick = false;
        while (!fresh_pick) {
          picked[j] = rng.NextBelow(kTargets);
          fresh_pick = true;
          for (uint64_t k = 0; k < j; ++k) {
            fresh_pick = fresh_pick && picked[k] != picked[j];
          }
        }
      }
      for (uint64_t j = 0; j < kUpdatesPerTxn; ++j) {
        const uint64_t value = Mix64(opts_.seed + t * kUpdatesPerTxn + j) | 1;
        exp_.inflight.emplace_back(picked[j], value);
        log_->LogUpdate(ctx, exp_.targets[picked[j]], &value, sizeof(value));
      }
      exp_.inflight_reached_commit = true;
      log_->Commit(ctx);
      // Acked: the group is durable whether or not Apply's cached stores land.
      for (const auto& [index, value] : exp_.inflight) {
        exp_.committed[index] = value;
      }
      exp_.inflight.clear();
      exp_.inflight_reached_commit = false;
      log_->Apply(ctx);
      ++acked_txns_;
    }
  }

  void Validate(System& fresh, ThreadContext& ctx, ValidationReport* report) override {
    ValidateRedo(&fresh, ctx, exp_, report);
  }

  uint64_t acked_ops() const override { return acked_txns_; }

 private:
  CrashWorkloadOptions opts_;
  std::unique_ptr<RedoLog> log_;
  RedoExpectation exp_;
  uint64_t acked_txns_ = 0;
};

// ---- Undo log: transactions of 4 in-place word stores over 8 fields. ----
class UndoCrashWorkload : public CrashWorkload {
 public:
  static constexpr uint64_t kFields = 8;
  static constexpr uint64_t kStoresPerTxn = 4;

  explicit UndoCrashWorkload(const CrashWorkloadOptions& opts) : opts_(opts) {}

  const char* name() const override { return "undo"; }

  void Setup(System& system, ThreadContext& ctx) override {
    (void)ctx;
    const PmRegion data = system.AllocatePm(kFields * kCacheLineSize, kCacheLineSize);
    for (uint64_t i = 0; i < kFields; ++i) {
      exp_.fields.push_back(data.At(i * kCacheLineSize));
    }
    exp_.committed.assign(kFields, 0);  // fresh PM reads as zero
    exp_.log_region = system.AllocatePm(16 * Transaction::kRecordSize, kCacheLineSize);
    tx_ = std::make_unique<Transaction>(&system, exp_.log_region);
  }

  void Run(ThreadContext& ctx) override {
    Rng rng(Mix64(opts_.seed ^ 0x04D0));
    const uint64_t txns = opts_.ops / kStoresPerTxn;
    for (uint64_t t = 0; t < txns; ++t) {
      tx_->Begin(ctx);
      uint64_t picked[kStoresPerTxn];
      for (uint64_t j = 0; j < kStoresPerTxn; ++j) {
        bool fresh_pick = false;
        while (!fresh_pick) {
          picked[j] = rng.NextBelow(kFields);
          fresh_pick = true;
          for (uint64_t k = 0; k < j; ++k) {
            fresh_pick = fresh_pick && picked[k] != picked[j];
          }
        }
        const uint64_t value = Mix64(opts_.seed + t * kStoresPerTxn + j) | 1;
        exp_.inflight.emplace_back(picked[j], value);
        tx_->Store64(ctx, exp_.fields[picked[j]], value);
      }
      exp_.inflight_reached_commit = true;
      tx_->Commit(ctx);
      for (const auto& [index, value] : exp_.inflight) {
        exp_.committed[index] = value;
      }
      exp_.inflight.clear();
      exp_.inflight_reached_commit = false;
      ++acked_txns_;
    }
  }

  void Validate(System& fresh, ThreadContext& ctx, ValidationReport* report) override {
    ValidateUndo(&fresh, ctx, exp_, report);
  }

  uint64_t acked_ops() const override { return acked_txns_; }

 private:
  CrashWorkloadOptions opts_;
  std::unique_ptr<Transaction> tx_;
  UndoExpectation exp_;
  uint64_t acked_txns_ = 0;
};

}  // namespace

std::unique_ptr<CrashWorkload> CrashWorkload::Create(std::string_view store,
                                                     const CrashWorkloadOptions& opts) {
  if (store == "cceh") {
    return std::make_unique<CcehCrashWorkload>(opts);
  }
  if (store == "fastfair") {
    return std::make_unique<FastFairCrashWorkload>(opts);
  }
  if (store == "flatlog") {
    return std::make_unique<FlatLogCrashWorkload>(opts);
  }
  if (store == "redo") {
    return std::make_unique<RedoCrashWorkload>(opts);
  }
  if (store == "undo") {
    return std::make_unique<UndoCrashWorkload>(opts);
  }
  return nullptr;
}

std::vector<std::string> CrashWorkload::StoreNames() {
  return {"cceh", "fastfair", "flatlog", "redo", "undo"};
}

}  // namespace pmemsim
