// Serving-tier tests: admission-queue mechanics, closed/open-loop completion,
// shed determinism, per-shard/global aggregation, and the latency identity
// sojourn == queue wait + service.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/core/platform.h"
#include "src/serve/request_queue.h"
#include "src/serve/tier.h"
#include "src/trace/json.h"
#include "src/trace/serve_metrics.h"

namespace pmemsim {
namespace {

// ---------- RequestQueue ----------

TEST(RequestQueueTest, BoundedDepthShedsWhenFull) {
  RequestQueue q(3);
  Request r;
  EXPECT_TRUE(q.Offer(r));
  EXPECT_TRUE(q.Offer(r));
  EXPECT_TRUE(q.Offer(r));
  EXPECT_FALSE(q.Offer(r));  // depth 3: the fourth is shed
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.offered(), 4u);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.max_occupancy(), 3u);
}

TEST(RequestQueueTest, BeginPhaseResetsAccountingButKeepsQueueAndLifetime) {
  // Regression for phase-scoped accounting: warm-up offers/sheds/occupancy
  // must not leak into the measured window opened at a phase boundary.
  RequestQueue q(3);
  Request r;
  EXPECT_TRUE(q.Offer(r));
  EXPECT_TRUE(q.Offer(r));
  EXPECT_TRUE(q.Offer(r));
  EXPECT_FALSE(q.Offer(r));  // warm-up shed
  EXPECT_EQ(q.max_occupancy(), 3u);

  std::vector<Request> batch;
  q.ClaimBatch(2, &batch);  // occupancy drops to 1 before the boundary
  q.BeginPhase();

  // Phase counters restart; max occupancy restarts at the REAL current size
  // (queued requests are occupancy the new phase inherits), not at zero.
  EXPECT_EQ(q.offered(), 0u);
  EXPECT_EQ(q.rejected(), 0u);
  EXPECT_EQ(q.max_occupancy(), 1u);
  EXPECT_EQ(q.size(), 1u);  // queued requests are not dropped

  EXPECT_TRUE(q.Offer(r));
  EXPECT_TRUE(q.Offer(r));
  EXPECT_FALSE(q.Offer(r));  // measured-phase shed
  EXPECT_EQ(q.offered(), 3u);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.max_occupancy(), 3u);

  // Lifetime totals span both phases.
  EXPECT_EQ(q.lifetime_offered(), 7u);
  EXPECT_EQ(q.lifetime_rejected(), 2u);
  EXPECT_EQ(q.lifetime_max_occupancy(), 3u);
}

TEST(RequestQueueTest, ClaimBatchIsFifoAndBounded) {
  RequestQueue q(16);
  for (uint64_t k = 1; k <= 10; ++k) {
    Request r;
    r.key = k;
    ASSERT_TRUE(q.Offer(r));
  }
  std::vector<Request> batch;
  EXPECT_EQ(q.ClaimBatch(4, &batch), 4u);
  EXPECT_EQ(q.ClaimBatch(100, &batch), 6u);  // the remainder, appended
  EXPECT_EQ(q.ClaimBatch(4, &batch), 0u);
  ASSERT_EQ(batch.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batch[i].key, i + 1) << "FIFO order";
  }
  EXPECT_TRUE(q.empty());
}

// ---------- ServiceTier ----------

ServeConfig SmallConfig() {
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.workers_per_shard = 2;
  cfg.keys = 400;
  cfg.ops = 400;
  cfg.clients = 4;
  cfg.think_cycles = 800;
  cfg.interarrival_cycles = 400;
  cfg.seed = 7;
  return cfg;
}

std::string RunTierJson(const ServeConfig& cfg) {
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.Run();
  return tier.ToJson();
}

TEST(ServiceTierTest, ClosedLoopCompletesTheOfferedBudget) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kClosed;
  cfg.mix = *MixByName("a");
  cfg.mix_name = "a";
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.Run();
  const ServiceStats global = tier.GlobalStats();
  // A deep-enough queue sheds nothing, so every offered attempt completes and
  // the budget is exactly ops per shard.
  EXPECT_EQ(global.offered, cfg.ops * cfg.shards);
  EXPECT_EQ(global.rejected, 0u);
  EXPECT_EQ(global.completed, cfg.ops * cfg.shards);
  EXPECT_GT(global.OpsPerSec(system->config().cpu_ghz, tier.serve_start()), 0.0);
}

TEST(ServiceTierTest, SojournIsWaitPlusServiceExactly) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kClosed;
  cfg.mix = *MixByName("f");  // rmw exercises read + write per request
  cfg.mix_name = "f";
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.Run();
  for (const auto& shard : tier.shards()) {
    const ServiceStats& s = shard->stats();
    EXPECT_EQ(s.sojourn_total, s.wait_total + s.service_total) << "shard " << shard->index();
  }
  const ServiceStats global = tier.GlobalStats();
  EXPECT_EQ(global.sojourn_total, global.wait_total + global.service_total);
}

TEST(ServiceTierTest, GlobalAggregatesShards) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kOpen;
  cfg.mix = *MixByName("b");
  cfg.mix_name = "b";
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.Run();
  uint64_t completed = 0, offered = 0, rejected = 0;
  Cycles last = 0;
  for (const auto& shard : tier.shards()) {
    completed += shard->stats().completed;
    offered += shard->stats().offered;
    rejected += shard->stats().rejected;
    last = std::max(last, shard->stats().last_completion);
  }
  const ServiceStats global = tier.GlobalStats();
  EXPECT_EQ(global.completed, completed);
  EXPECT_EQ(global.offered, offered);
  EXPECT_EQ(global.rejected, rejected);
  EXPECT_EQ(global.last_completion, last);
  EXPECT_EQ(global.offered, global.completed + global.rejected);
  EXPECT_EQ(global.sojourn.count(), global.completed);
}

TEST(ServiceTierTest, OpenLoopTightQueueShedsDeterministically) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kOpen;
  cfg.mix = *MixByName("a");
  cfg.mix_name = "a";
  cfg.queue_depth = 2;
  cfg.interarrival_cycles = 60;  // overload: arrivals outpace service
  const std::string first = RunTierJson(cfg);
  const std::string second = RunTierJson(cfg);
  EXPECT_EQ(first, second) << "same seed must reproduce every shed decision";
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(first, &parsed));
  const JsonValue* global = parsed.Find("global");
  ASSERT_NE(global, nullptr);
  EXPECT_GT(global->Find("rejected")->AsUint(), 0u) << "overload must shed";
  EXPECT_EQ(global->Find("offered")->AsUint(), cfg.ops * cfg.shards);
  EXPECT_EQ(global->Find("offered")->AsUint(),
            global->Find("completed")->AsUint() + global->Find("rejected")->AsUint());
}

TEST(ServiceTierTest, BatchSizeVariantsAllComplete) {
  for (const uint64_t batch : {uint64_t{1}, uint64_t{4}, uint64_t{32}}) {
    ServeConfig cfg = SmallConfig();
    cfg.loop = LoopMode::kClosed;
    cfg.mix = *MixByName("c");
    cfg.mix_name = "c";
    cfg.batch = batch;
    auto system = MakeG1System(2);
    ServiceTier tier(system.get(), cfg);
    tier.Run();
    EXPECT_EQ(tier.GlobalStats().completed, cfg.ops * cfg.shards) << "batch " << batch;
  }
}

TEST(ServiceTierTest, AttributionCoversTheServePhase) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kClosed;
  cfg.mix = *MixByName("b");
  cfg.mix_name = "b";
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.Run();
  for (const auto& shard : tier.shards()) {
    const AttributionCollector& attr = shard->attribution();
    EXPECT_GT(attr.access_count(), 0u) << "shard " << shard->index();
    // Exact conservation per access: stage totals sum to end-to-end.
    EXPECT_EQ(attr.StageTotalSum(), attr.end_to_end_total());
    EXPECT_LE(attr.OpQuantile(AttributionCollector::kLoad, 0.5),
              attr.OpQuantile(AttributionCollector::kLoad, 0.999));
  }
}

TEST(ServiceTierTest, EveryStoreServesEveryMix) {
  for (const StoreKind store : {StoreKind::kCceh, StoreKind::kFastFair, StoreKind::kFlatLog}) {
    for (const char* mix : {"a", "b", "c", "d", "e", "f"}) {
      ServeConfig cfg = SmallConfig();
      cfg.keys = 150;
      cfg.ops = 150;
      cfg.shards = 1;
      cfg.store = store;
      cfg.mix = *MixByName(mix);
      cfg.mix_name = mix;
      cfg.scan_len = 8;
      auto system = MakeG1System(1);
      ServiceTier tier(system.get(), cfg);
      tier.Run();
      const ServiceStats global = tier.GlobalStats();
      EXPECT_EQ(global.completed + global.rejected, global.offered)
          << StoreName(store) << "/" << mix;
      EXPECT_GT(global.completed, 0u) << StoreName(store) << "/" << mix;
    }
  }
}

// ---------- Serve observability: windowed metrics, spans, timeline ----------

ServeTimeline::Config TimelineConfig(const ServeConfig& cfg, Cycles interval,
                                     uint64_t slo_p99 = 0) {
  ServeTimeline::Config tc;
  tc.mix = cfg.mix_name;
  tc.loop = LoopModeName(cfg.loop);
  tc.store = StoreName(cfg.store);
  tc.engine = "interleaved";
  tc.shards = cfg.shards;
  tc.interval_cycles = interval;
  tc.slo_p99_cycles = slo_p99;
  return tc;
}

TEST(ServeMetricsTest, WindowedQuantilesMatchReferenceMerge) {
  // Feed completions out of simulated-time order, the way epoch replays and
  // multi-worker interleavings deliver them, and compare the materialized
  // windows against a reference model that buckets into per-window
  // Histograms directly.
  const Cycles kInterval = 100;
  const Cycles kOrigin = 1000;
  const Cycles kEnd = 1450;
  ServeMetrics m(kInterval);
  m.Begin(kOrigin);
  struct Ev {
    Cycles end;
    Cycles sojourn;
  };
  const std::vector<Ev> events = {{1005, 40}, {1399, 900}, {1100, 7},   {1250, 300}, {1199, 55},
                                  {1000, 1},  {1310, 11},  {1105, 220}, {1450, 9},   {1399, 12}};
  for (const Ev& e : events) {
    m.RecordCompletion(e.end, e.sojourn);
  }
  m.Finalize(kEnd);

  const size_t total = (kEnd - kOrigin) / kInterval + 1;  // 4 full + 1 partial
  std::vector<Histogram> ref(total);
  for (const Ev& e : events) {
    // Same clamp rule as the series: the closing window owns its right edge.
    const size_t idx = std::min<size_t>((e.end - kOrigin) / kInterval, total - 1);
    ref[idx].Add(e.sojourn);
  }
  ASSERT_EQ(m.windows().size(), total);
  for (size_t i = 0; i < total; ++i) {
    const ServeWindow& w = m.windows()[i];
    EXPECT_EQ(w.index, i);
    EXPECT_EQ(w.t_begin, kOrigin + i * kInterval);
    EXPECT_EQ(w.completed, ref[i].count()) << "window " << i;
    ASSERT_EQ(w.sojourn.count(), ref[i].count()) << "window " << i;
    for (const double q : {0.5, 0.99, 0.999}) {
      if (ref[i].count() > 0) {
        EXPECT_EQ(w.sojourn.Quantile(q), ref[i].Quantile(q)) << "window " << i << " q" << q;
      }
    }
  }
  EXPECT_TRUE(m.windows().back().partial);  // [1400, 1450) is half an interval
  EXPECT_EQ(m.windows().back().t_end, kEnd);
  EXPECT_EQ(m.total_completed(), events.size());
}

TEST(ServeTimelineTest, GlobalWindowsAreTheExactShardMerge) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kOpen;
  cfg.mix = *MixByName("a");
  cfg.mix_name = "a";
  ServeTimeline timeline(TimelineConfig(cfg, /*interval=*/200));
  timeline.Begin(0);
  timeline.shard(0)->RecordCompletion(150, 40);
  timeline.shard(0)->RecordAdmission(10);
  timeline.shard(0)->ObserveQueueDepth(180, 3);
  timeline.shard(1)->RecordCompletion(150, 90);
  timeline.shard(1)->RecordShed(450);
  timeline.shard(1)->ObserveQueueDepth(170, 2);
  timeline.Finalize(500);

  ASSERT_EQ(timeline.global_windows().size(), 3u);
  const ServeWindow& w0 = timeline.global_windows()[0];
  EXPECT_EQ(w0.completed, 2u);
  EXPECT_EQ(w0.admitted, 1u);
  EXPECT_EQ(w0.queue_depth, 5u);  // gauge merges by shard sum
  Histogram ref;
  ref.Add(40);
  ref.Add(90);
  EXPECT_EQ(w0.sojourn.Quantile(0.5), ref.Quantile(0.5));
  EXPECT_EQ(w0.sojourn.Quantile(0.99), ref.Quantile(0.99));
  // Depth gauges carry forward through idle windows; event counts do not.
  const ServeWindow& w1 = timeline.global_windows()[1];
  EXPECT_EQ(w1.completed, 0u);
  EXPECT_EQ(w1.queue_depth, 5u);
  EXPECT_EQ(timeline.global_windows()[2].shed, 1u);
}

TEST(ServiceTierTest, SpanConservationIdentities) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kClosed;
  cfg.mix = *MixByName("f");  // rmw: every request reads and writes
  cfg.mix_name = "f";
  ServeTimeline timeline(TimelineConfig(cfg, /*interval=*/20000));
  timeline.EnableSpans();
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.AttachTimeline(&timeline);
  tier.Run();

  uint64_t total_spans = 0;
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    const SpanRecorder* rec = timeline.spans(s);
    ASSERT_NE(rec, nullptr);
    const ServiceStats& stats = tier.shards()[s]->stats();
    EXPECT_EQ(rec->spans().size() + rec->dropped(), stats.completed) << "shard " << s;
    Cycles wait_sum = 0, service_sum = 0, sojourn_sum = 0;
    for (const RequestSpan& sp : rec->spans()) {
      ASSERT_LE(sp.arrival, sp.admit);
      ASSERT_LE(sp.admit, sp.start);
      ASSERT_LE(sp.start, sp.end);
      // Conservation, exact: the lifecycle partitions the sojourn, and the
      // stage breakdown partitions the service time.
      EXPECT_EQ(sp.wait() + sp.service(), sp.sojourn());
      Cycles staged = 0;
      for (int k = 0; k < AttributionCollector::kStageCount; ++k) {
        staged += sp.stages[k];
      }
      EXPECT_EQ(staged, sp.service());
      wait_sum += sp.wait();
      service_sum += sp.service();
      sojourn_sum += sp.sojourn();
    }
    // No spans dropped at this budget, so the span sums must reproduce the
    // shard's whole-run stats exactly.
    EXPECT_EQ(rec->dropped(), 0u);
    EXPECT_EQ(wait_sum, stats.wait_total) << "shard " << s;
    EXPECT_EQ(service_sum, stats.service_total) << "shard " << s;
    EXPECT_EQ(sojourn_sum, stats.sojourn_total) << "shard " << s;
    total_spans += rec->spans().size();
  }
  EXPECT_EQ(total_spans, tier.GlobalStats().completed);
}

TEST(ServiceTierTest, TimelineMatchesWholeRunTotals) {
  ServeConfig cfg = SmallConfig();
  cfg.loop = LoopMode::kOpen;
  cfg.mix = *MixByName("a");
  cfg.mix_name = "a";
  cfg.queue_depth = 2;
  cfg.interarrival_cycles = 60;  // overload: force sheds into the timeline
  ServeTimeline timeline(TimelineConfig(cfg, /*interval=*/10000, /*slo_p99=*/1));
  auto system = MakeG1System(2);
  ServiceTier tier(system.get(), cfg);
  tier.AttachTimeline(&timeline);
  tier.Run();

  EXPECT_FALSE(timeline.truncated());
  const ServiceStats global = tier.GlobalStats();
  uint64_t completed = 0, admitted = 0, shed = 0;
  Cycles prev_end = tier.serve_start();
  for (const ServeWindow& w : timeline.global_windows()) {
    EXPECT_EQ(w.t_begin, prev_end) << "window " << w.index;
    prev_end = w.t_end;
    completed += w.completed;
    admitted += w.admitted;
    shed += w.shed;
    // The memory-plane series joins every window (same origin and interval).
    EXPECT_TRUE(w.has_mem) << "window " << w.index;
    // Per-window conservation against the shard series.
    uint64_t shard_completed = 0;
    for (uint32_t s = 0; s < cfg.shards; ++s) {
      ASSERT_LT(w.index, timeline.shard(s)->windows().size());
      shard_completed += timeline.shard(s)->windows()[w.index].completed;
    }
    EXPECT_EQ(w.completed, shard_completed) << "window " << w.index;
  }
  EXPECT_EQ(completed, global.completed);
  EXPECT_EQ(shed, global.rejected);
  EXPECT_EQ(admitted, global.offered - global.rejected);
  EXPECT_GT(shed, 0u) << "overload run must show sheds in the timeline";

  // With a 1-cycle SLO every traffic-bearing window is in violation.
  const ServeTimeline::SloSummary slo = timeline.Slo();
  EXPECT_EQ(slo.windows, timeline.global_windows().size());
  EXPECT_EQ(slo.violations, slo.windows_with_traffic);
  EXPECT_DOUBLE_EQ(slo.burn_rate, 1.0);

  // The serialized artifact parses and reproduces the totals.
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(timeline.ToJson(), &parsed));
  EXPECT_EQ(parsed.Find("totals")->Find("completed")->AsUint(), global.completed);
  EXPECT_EQ(parsed.Find("totals")->Find("shed")->AsUint(), global.rejected);
  EXPECT_FALSE(parsed.Find("truncated")->boolean);
}

TEST(ServeTimelineTest, FlushTruncatedYieldsWellFormedTimeline) {
  // The unwind-flush path: a sweep point dying mid-serve must still leave a
  // contiguous, parseable timeline ending at the last observed event.
  ServeConfig cfg = SmallConfig();
  cfg.mix = *MixByName("a");
  cfg.mix_name = "a";
  cfg.loop = LoopMode::kOpen;
  ServeTimeline timeline(TimelineConfig(cfg, /*interval=*/100));
  timeline.Begin(1000);
  timeline.shard(0)->RecordAdmission(1010);
  timeline.shard(0)->RecordCompletion(1350, 340);
  timeline.shard(1)->RecordShed(1120);

  timeline.FlushTruncated();
  EXPECT_TRUE(timeline.truncated());
  // Finalized at the max observed event (1350): windows [1000..1300) full,
  // [1300,1350) partial, and the flush is idempotent against a later close.
  ASSERT_EQ(timeline.global_windows().size(), 4u);
  EXPECT_EQ(timeline.global_windows().back().t_end, 1350u);
  EXPECT_TRUE(timeline.global_windows().back().partial);
  EXPECT_EQ(timeline.global_windows().back().completed, 1u);
  timeline.Finalize(99999);
  timeline.FlushTruncated();
  ASSERT_EQ(timeline.global_windows().size(), 4u);

  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(timeline.ToJson(), &parsed));
  EXPECT_TRUE(parsed.Find("truncated")->boolean);
  EXPECT_EQ(parsed.Find("end")->AsUint(), 1350u);

  // Degenerate flush: nothing observed, not even Begin. One zero-width
  // window keeps every downstream consumer's "non-empty series" invariant.
  ServeTimeline empty(TimelineConfig(cfg, /*interval=*/100));
  empty.FlushTruncated();
  EXPECT_TRUE(empty.truncated());
  ASSERT_EQ(empty.global_windows().size(), 1u);
  EXPECT_EQ(empty.global_windows()[0].t_begin, empty.global_windows()[0].t_end);
  JsonValue empty_parsed;
  ASSERT_TRUE(JsonValue::Parse(empty.ToJson(), &empty_parsed));
}

}  // namespace
}  // namespace pmemsim