// Figure 7 (paper §3.5, Algorithm 1): read-after-persist (RAP) latency vs RAP
// distance, on PM and DRAM, from the local and the remote NUMA node, for
// clwb+mfence, clwb+sfence, and nt-store+mfence.
//
// Expected shapes (paper):
//  * G1 PM: clwb+mfence and nt-store+mfence peak ~2,500 cycles (3,200 remote)
//    at distance 0, decaying hyperbolically to the buffer-hit level;
//    clwb+sfence is low at distance <= 1 (unordered loads still hit the
//    cache), jumps to ~800/1,000, then converges down.
//  * G2 PM: clwb curves flatten to DRAM-like levels (clwb retains the line);
//    nt-store still shows the full RAP.
//  * DRAM: the same shapes compressed (~700-cycle peak).
//
// Output: CSV  gen,device,locality,mode,distance,cycles_per_iteration

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/core/platform.h"

namespace {

using namespace pmemsim;

enum class RapMode { kClwbMfence, kClwbSfence, kNtStoreMfence };

const char* ModeName(RapMode m) {
  switch (m) {
    case RapMode::kClwbMfence:
      return "clwb+mfence";
    case RapMode::kClwbSfence:
      return "clwb+sfence";
    case RapMode::kNtStoreMfence:
      return "nt-store+mfence";
  }
  return "?";
}

double MeasureRap(Generation gen, bool dram, bool remote, RapMode mode, uint64_t distance,
                  uint64_t wss = KiB(4)) {
  auto system = MakeSystem(gen, /*optane_dimm_count=*/1);
  ThreadContext& ctx = system->CreateThread(remote ? 1 : 0);
  SetPrefetchers(ctx, false, false, false);

  const PmRegion region =
      dram ? system->AllocateDram(wss, kXPLineSize) : system->AllocatePm(wss, kXPLineSize);
  const uint64_t lines = wss / kCacheLineSize;

  auto run = [&](uint64_t iterations) -> Cycles {
    const Cycles start = ctx.clock();
    uint64_t offset = 0;
    for (uint64_t i = 0; i < iterations; ++i) {
      const Addr addr = region.base + offset;
      if (mode == RapMode::kNtStoreMfence) {
        ctx.NtStore64(addr, i);
        ctx.Mfence();
      } else {
        ctx.Store64(addr, i);
        ctx.Clwb(addr);
        if (mode == RapMode::kClwbMfence) {
          ctx.Mfence();
        } else {
          ctx.Sfence();
        }
      }
      // Read a previously persisted cacheline `distance` lines back.
      const uint64_t back = (offset + wss - distance * kCacheLineSize) % wss;
      (void)ctx.Load64(region.base + back);
      offset = (offset + kCacheLineSize) % wss;
    }
    return ctx.clock() - start;
  };

  run(3 * lines);  // warm up: all lines persisted at least once
  const Cycles total = run(6 * lines);
  return static_cast<double>(total) / static_cast<double>(6 * lines);
}

}  // namespace

int main(int argc, char** argv) {
  pmemsim_bench::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: fig07_rap [--gen=g1|g2|both] [--max_distance=40] [--panel=pm-local|pm-remote|"
        "dram-local|dram-remote|all]\n%s",
        pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const std::string gen_flag = flags.Get("gen", "both");
  const std::string panel = flags.Get("panel", "all");
  const uint64_t max_distance = flags.GetU64("max_distance", 40);
  pmemsim_bench::BenchReport report(flags, "fig07_rap");
  pmemsim_bench::SweepRunner runner(flags);
  flags.RejectUnknown();

  pmemsim_bench::PrintHeader("Figure 7", "read-after-persist latency vs distance (Algorithm 1)");
  std::printf("gen,device,locality,mode,distance,cycles\n");
  for (Generation gen : {Generation::kG1, Generation::kG2}) {
    if ((gen == Generation::kG1 && gen_flag == "g2") ||
        (gen == Generation::kG2 && gen_flag == "g1")) {
      continue;
    }
    for (const bool dram : {false, true}) {
      for (const bool remote : {false, true}) {
        const std::string key =
            std::string(dram ? "dram" : "pm") + (remote ? "-remote" : "-local");
        if (panel != "all" && panel != key) {
          continue;
        }
        for (const RapMode mode :
             {RapMode::kClwbMfence, RapMode::kClwbSfence, RapMode::kNtStoreMfence}) {
          if (dram && mode == RapMode::kNtStoreMfence) {
            continue;  // the paper's DRAM panels plot only the clwb variants
          }
          for (uint64_t d = 0; d <= max_distance; ++d) {
            const char* gen_name = gen == Generation::kG1 ? "G1" : "G2";
            const std::string label = std::string(gen_name) + "/" + key + "/" + ModeName(mode) +
                                      "/d" + std::to_string(d);
            runner.Add(label, [=](pmemsim_bench::SweepPoint& point) {
              const double cycles = MeasureRap(gen, dram, remote, mode, d);
              point.Printf("%s,%s,%s,%s,%llu,%.1f\n", gen_name, dram ? "DRAM" : "PM",
                           remote ? "remote" : "local", ModeName(mode),
                           static_cast<unsigned long long>(d), cycles);
              point.AddRow()
                  .Set("gen", gen_name)
                  .Set("device", dram ? "DRAM" : "PM")
                  .Set("locality", remote ? "remote" : "local")
                  .Set("mode", ModeName(mode))
                  .Set("distance", d)
                  .Set("cycles", cycles);
            });
          }
        }
      }
    }
  }
  return runner.Finish(report);
}
