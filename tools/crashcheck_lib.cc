#include "tools/crashcheck_lib.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/common/config.h"
#include "src/common/random.h"
#include "src/core/system.h"
#include "src/crash/crash_injector.h"
#include "src/crash/persist_tracker.h"
#include "src/crash/recovery_validator.h"
#include "src/crash/workloads.h"

namespace pmemsim_crashcheck {

namespace {

using pmemsim::CrashEventKind;
using pmemsim::CrashEventKindName;
using pmemsim::CrashInjector;
using pmemsim::CrashSignal;
using pmemsim::CrashWorkload;
using pmemsim::CrashWorkloadOptions;
using pmemsim::Cycles;
using pmemsim::Mix64;
using pmemsim::PersistTracker;
using pmemsim::PlatformConfig;
using pmemsim::Rng;
using pmemsim::System;
using pmemsim::ThreadContext;
using pmemsim::ValidationReport;
using pmemsim_bench::BenchReport;
using pmemsim_bench::Flags;
using pmemsim_bench::SweepRunner;

constexpr char kUsage[] =
    "pmemsim_crashcheck: crash-point injection + recovery validation\n"
    "  --store=<name>       cceh|fastfair|flatlog|redo|undo (default cceh)\n"
    "  --platform=<name>    g1|g2|g2-eadr (default g1)\n"
    "  --points=<n>         crash points to sample (default 200)\n"
    "  --seed=<n>           sampling + tear seed (default 7)\n"
    "  --ops=<n>            workload operations (default 2000)\n"
    "  --tear=<mode>        word|subword in-flight tear granularity\n"
    "  --break_persist      drop the cceh commit barrier (self-test: must\n"
    "                       produce violations)\n"
    "  --jobs=<n>           worker threads (output is identical at any -j)\n";

struct PointOutcome {
  bool crashed = false;
  CrashEventKind kind = CrashEventKind::kWpqAccept;
  Cycles crash_cycles = 0;
  uint64_t acked_ops = 0;
  uint64_t checks = 0;
  uint64_t violations = 0;
  PersistTracker::MaterializeResult mat;
  std::string first_message;
};

uint64_t TearSeedFor(uint64_t seed, uint64_t event_index) {
  return Mix64(seed ^ (0x9E3779B97F4A7C15ull * (event_index + 1)));
}

}  // namespace

int RunCrashcheck(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf("%s%s", kUsage, pmemsim_bench::kTelemetryFlagsHelp);
    return 0;
  }
  const std::string store = flags.Get("store", "cceh");
  const std::string platform_name = flags.Get("platform", "g1");
  const uint64_t points_requested = flags.GetU64("points", 200);
  const uint64_t seed = flags.GetU64("seed", 7);
  const uint64_t ops = flags.GetU64("ops", 2000);
  const std::string tear = flags.Get("tear", "word");
  const bool break_persist = flags.Has("break_persist");
  BenchReport report(flags, "pmemsim_crashcheck");
  SweepRunner runner(flags);
  flags.RejectUnknown();

  const auto platform_opt = pmemsim::PlatformByName(platform_name);
  if (!platform_opt) {
    Flags::BadValue("platform", platform_name, "g1|g2|g2-eadr");
  }
  const PlatformConfig platform = *platform_opt;
  const auto names = CrashWorkload::StoreNames();
  if (std::find(names.begin(), names.end(), store) == names.end()) {
    Flags::BadValue("store", store, "cceh|fastfair|flatlog|redo|undo");
  }
  PersistTracker::TearGranularity granularity = PersistTracker::TearGranularity::kWord;
  if (tear == "subword") {
    granularity = PersistTracker::TearGranularity::kSubword;
  } else if (tear != "word") {
    Flags::BadValue("tear", tear, "word|subword");
  }

  CrashWorkloadOptions opts;
  opts.ops = ops;
  opts.seed = seed;
  opts.break_persist = break_persist;

  pmemsim_bench::PrintHeader("pmemsim_crashcheck",
                             "durable-image crash injection + recovery validation");
  std::printf("# store=%s platform=%s ops=%llu seed=%llu tear=%s%s\n", store.c_str(),
              platform.name.c_str(), static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(seed), tear.c_str(),
              break_persist ? " break_persist" : "");

  // Calibration: count the crash events one uninterrupted run generates and
  // collect the vulnerable-byte statistics along the way.
  uint64_t total_events = 0;
  uint64_t acked_total = 0;
  PersistTracker::Stats window;
  {
    System system(platform);
    PersistTracker tracker(platform.eadr_enabled);
    tracker.Attach(&system);
    ThreadContext& ctx = system.CreateThread();
    auto workload = CrashWorkload::Create(store, opts);
    workload->Setup(system, ctx);
    CrashInjector counter;
    tracker.StartEvents(&counter);
    workload->Run(ctx);
    total_events = counter.events_seen();
    acked_total = workload->acked_ops();
    window = tracker.stats();
  }

  // Sample distinct event indexes: exhaustive when they fit the budget,
  // otherwise a seeded shuffle (replayable for any --points/--seed pair).
  std::vector<uint64_t> sample;
  sample.reserve(total_events);
  for (uint64_t i = 0; i < total_events; ++i) {
    sample.push_back(i);
  }
  if (points_requested < total_events) {
    Rng rng(Mix64(seed ^ 0xC4A5C4EC));
    rng.Shuffle(sample);
    sample.resize(points_requested);
    std::sort(sample.begin(), sample.end());
  }

  std::printf("# events_total=%llu sampled=%zu acked_ops=%llu\n",
              static_cast<unsigned long long>(total_events), sample.size(),
              static_cast<unsigned long long>(acked_total));
  std::printf("point,event_kind,crash_cycles,acked_ops,inflight_writes,checks,violations\n");

  std::vector<PointOutcome> outcomes(sample.size());
  for (size_t p = 0; p < sample.size(); ++p) {
    const uint64_t event_index = sample[p];
    runner.Add("point" + std::to_string(event_index),
               [&outcomes, p, event_index, platform, store, opts, seed,
                granularity](pmemsim_bench::SweepPoint& point) {
                 PointOutcome out;
                 System system(platform);
                 PersistTracker tracker(platform.eadr_enabled);
                 tracker.Attach(&system);
                 ThreadContext& ctx = system.CreateThread();
                 auto workload = CrashWorkload::Create(store, opts);
                 workload->Setup(system, ctx);
                 CrashInjector injector;
                 injector.Arm(event_index);
                 tracker.StartEvents(&injector);
                 try {
                   workload->Run(ctx);
                 } catch (const CrashSignal&) {
                   out.crashed = true;
                 }
                 ValidationReport rep;
                 if (!out.crashed) {
                   rep.Fail("crash point " + std::to_string(event_index) + " never fired");
                 } else {
                   out.kind = injector.fired_kind();
                   out.crash_cycles = injector.crash_now();
                   out.acked_ops = workload->acked_ops();
                   System fresh(platform);
                   out.mat = tracker.Materialize(&fresh.backing(), injector.crash_now(),
                                                 TearSeedFor(seed, event_index), granularity);
                   ThreadContext& vctx = fresh.CreateThread();
                   workload->Validate(fresh, vctx, &rep);
                 }
                 out.checks = rep.checks;
                 out.violations = rep.violations;
                 if (!rep.messages.empty()) {
                   out.first_message = rep.messages.front();
                 }
                 point.Printf("%llu,%s,%llu,%llu,%llu,%llu,%llu\n",
                              static_cast<unsigned long long>(event_index),
                              CrashEventKindName(out.kind),
                              static_cast<unsigned long long>(out.crash_cycles),
                              static_cast<unsigned long long>(out.acked_ops),
                              static_cast<unsigned long long>(out.mat.inflight_writes),
                              static_cast<unsigned long long>(out.checks),
                              static_cast<unsigned long long>(out.violations));
                 point.AddRow()
                     .Set("point", event_index)
                     .Set("event_kind", CrashEventKindName(out.kind))
                     .Set("crash_cycles", out.crash_cycles)
                     .Set("acked_ops", out.acked_ops)
                     .Set("durable_writes", out.mat.durable_writes)
                     .Set("inflight_writes", out.mat.inflight_writes)
                     .Set("torn_writes", out.mat.torn_writes)
                     .Set("checks", out.checks)
                     .Set("violations", out.violations)
                     .Set("first_violation", out.first_message);
                 outcomes[p] = std::move(out);
               });
  }

  const int failed_points = runner.Run(report);

  uint64_t total_violations = 0, total_checks = 0;
  for (const PointOutcome& out : outcomes) {
    total_violations += out.violations;
    total_checks += out.checks;
  }
  std::printf("summary,%s,%s,%zu,%llu,%llu,%llu\n", store.c_str(), platform.name.c_str(),
              sample.size(), static_cast<unsigned long long>(total_checks),
              static_cast<unsigned long long>(total_violations),
              static_cast<unsigned long long>(window.max_vulnerable_bytes));
  report.AddRow()
      .Set("summary", uint64_t{1})
      .Set("store", store)
      .Set("platform", platform.name)
      .Set("tear", tear)
      .Set("ops", ops)
      .Set("seed", seed)
      .Set("break_persist", static_cast<uint64_t>(break_persist ? 1 : 0))
      .Set("events_total", total_events)
      .Set("points", static_cast<uint64_t>(sample.size()))
      .Set("acked_ops", acked_total)
      .Set("total_checks", total_checks)
      .Set("total_violations", total_violations)
      .Set("failed_points", static_cast<uint64_t>(failed_points))
      .Set("max_vulnerable_bytes", window.max_vulnerable_bytes)
      .Set("mean_vulnerable_bytes", window.MeanVulnerableBytes())
      .Set("max_in_cache_bytes", window.max_in_cache_bytes)
      .Set("max_in_wpq_bytes", window.max_in_wpq_bytes);

  const int rc = report.Finish();
  if (failed_points > 0 || total_violations > 0) {
    std::fprintf(stderr, "crashcheck: %llu violation(s) across %zu point(s)\n",
                 static_cast<unsigned long long>(total_violations), sample.size());
    return 1;
  }
  return rc;
}

}  // namespace pmemsim_crashcheck
