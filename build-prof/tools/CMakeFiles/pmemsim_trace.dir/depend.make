# Empty dependencies file for pmemsim_trace.
# This may be replaced when dependencies are built.
