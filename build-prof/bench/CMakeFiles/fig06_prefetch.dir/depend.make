# Empty dependencies file for fig06_prefetch.
# This may be replaced when dependencies are built.
