// Undo-log transactions (libpmemobj-flavoured failure atomicity).
//
// Complements the §4.2 redo log with the other classic scheme: before a range
// is modified in place, its OLD contents are snapshotted to the undo log and
// persisted; on commit the new in-place data is persisted and the log is
// deactivated; a crash mid-transaction rolls the snapshots back. Undo records
// are appended to fresh log cachelines via nt-stores, so — like the redo log —
// the log itself never re-persists a recently persisted line on G1.
//
// PM layout: an arena of 64 B records.
//   record 0 (head):    [0..4) kHeadMagic | [4..8) unused
//                       [8..16) (seq << 1) | active-bit
//   snapshot record:    [0..8) target | [8..12) len(<=32) | [12..16) kSnapMagic
//                       [16..24) seq | [24..24+len) old bytes | [56..64) XOR
//                       checksum of words 0..6
// Large snapshots split across multiple records. Recovery applies matching-
// seq records in reverse order, restoring the pre-transaction image.
//
// Two fields are designed around the x86 8-byte failure-atomicity unit:
//  - The head packs the active bit and the sequence number into ONE aligned
//    word. Were they separate words, a torn head (new state, old seq) would
//    roll back the PREVIOUS transaction's still-present records over its
//    committed state.
//  - Snapshot payload words can tear independently of the (atomic) magic
//    word, because records within one Snapshot() call are nt-stored without
//    intervening fences. The checksum word detects any torn record; recovery
//    stops at the first mismatch. That is sound because only records of the
//    crash-interrupted Snapshot call can be torn (every earlier call fenced),
//    and that call's in-place store never executed — its target needs no
//    rollback.

#ifndef SRC_PERSIST_UNDO_LOG_H_
#define SRC_PERSIST_UNDO_LOG_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/core/system.h"
#include "src/cpu/thread_context.h"

namespace pmemsim {

class Transaction {
 public:
  static constexpr uint64_t kRecordSize = kCacheLineSize;
  static constexpr uint32_t kMaxPayload = 32;  // bytes [24..56); [56..64) is the checksum
  static constexpr uint32_t kHeadMagic = 0x554E4448;  // "UNDH"
  static constexpr uint32_t kSnapMagic = 0x554E4453;  // "UNDS"
  static constexpr uint64_t kStateIdle = 0;
  static constexpr uint64_t kStateActive = 1;
  static constexpr uint64_t kChecksumOffset = 56;
  static_assert(24 + kMaxPayload <= kChecksumOffset, "payload overlaps the checksum word");

  // `log_region` must be PM; its first record is the transaction head.
  Transaction(System* system, PmRegion log_region);

  // Starts a transaction. No nesting.
  void Begin(ThreadContext& ctx);

  // Snapshots [addr, addr+len) before the caller modifies it. Must be inside
  // an active transaction; persisting the snapshot happens here.
  void Snapshot(ThreadContext& ctx, Addr addr, uint32_t len);

  // Convenience: snapshot + 64-bit store.
  void Store64(ThreadContext& ctx, Addr addr, uint64_t value);

  // Persists all ranges modified through Store64/registered via Snapshot,
  // then deactivates the log. After this returns the new state is durable.
  void Commit(ThreadContext& ctx);

  // Rolls the in-flight transaction back from the (DRAM-shadowed) snapshots
  // and deactivates the log.
  void Abort(ThreadContext& ctx);

  // Crash recovery on a fresh Transaction over an existing region: if the
  // head is active, restores all matching snapshots from PM in reverse order
  // and deactivates. Returns the number of records rolled back.
  size_t Recover(ThreadContext& ctx);

  bool active() const { return active_; }
  uint64_t capacity_records() const { return region_.size / kRecordSize; }
  size_t snapshot_records() const { return next_record_ - 1; }

 private:
  struct Shadow {
    Addr target;
    uint32_t len;
    uint8_t old_bytes[kMaxPayload];
  };

  Addr RecordAddr(uint64_t index) const { return region_.base + index * kRecordSize; }
  void WriteHead(ThreadContext& ctx, uint64_t state, uint64_t seq);
  void AppendSnapshotRecord(ThreadContext& ctx, Addr target, const uint8_t* old_bytes,
                            uint32_t len);

  System* system_;
  PmRegion region_;
  bool active_ = false;
  uint64_t seq_ = 0;
  uint64_t next_record_ = 1;  // record 0 is the head
  std::vector<Shadow> shadows_;
};

}  // namespace pmemsim

#endif  // SRC_PERSIST_UNDO_LOG_H_
