// CPU cache prefetchers (paper §3.4).
//
// The testbeds expose three BIOS-toggleable prefetchers; each is modeled as a
// simple trigger rule over the per-thread demand stream:
//
//  * adjacent-line ("spatial"): on an L2 demand miss or the first demand touch
//    of a prefetched L2 line, fetch the next cacheline into L2.
//  * DCU streamer (L1): on an ascending demand pair (line == prev + 64), fetch
//    the next cacheline into L1.
//  * L2 hardware stream: tracks per-4KB-page constant strides (any multiple of
//    64 B); after three consecutive matching strides the stream *locks* with a
//    configurable probability (real lock arbitration is fuzzy; stochastic
//    gating reproduces the modest waste of Fig. 6 b/f) and then prefetches
//    `degree` strides ahead on every subsequent match.
//
// All prefetch fills are marked so demand first-touches can be distinguished;
// fills are not charged to the thread clock but do consume DIMM bandwidth —
// exactly the waste mechanism the paper measures: a mispredicted cacheline
// costs 64 B at the iMC but a whole 256 B XPLine at the media.

#ifndef SRC_CACHE_PREFETCHER_H_
#define SRC_CACHE_PREFETCHER_H_

#include <array>
#include <cstdint>

#include "src/common/config.h"
#include "src/common/random.h"
#include "src/common/types.h"

namespace pmemsim {

// Where a prefetch engine deposits its fills (implemented by CacheHierarchy).
class PrefetchSink {
 public:
  virtual ~PrefetchSink() = default;
  virtual void PrefetchFill(Addr line_addr, Cycles now, bool into_l1) = 0;
};

class PrefetchEngine {
 public:
  PrefetchEngine(const CacheConfig& config, PrefetchSink* sink, uint64_t rng_seed = 0xFEEDF00D);

  struct DemandInfo {
    Addr line = 0;
    Cycles now = 0;
    bool l1_hit = false;
    bool l2_hit = false;
    bool first_touch_prefetched = false;  // first demand touch of a prefetched line
  };

  void OnDemandAccess(const DemandInfo& info);

  // Training fast path for the all-prefetchers-disabled configuration: with
  // every prefetcher off, the only state OnDemandAccess changes is the DCU
  // detector's last demand line — record exactly that (`line` must already be
  // cacheline-aligned) without building a DemandInfo or making a call.
  void NoteDemandOnly(Addr line) { last_demand_line_ = line; }

  void SetEnabled(bool adjacent, bool dcu, bool stream);
  bool any_enabled() const { return adjacent_enabled_ || dcu_enabled_ || stream_enabled_; }

  void Reset();

 private:
  struct StreamEntry {
    Addr page = 0;
    Addr last_line = 0;
    int64_t stride = 0;
    int steps = 0;
    bool locked = false;
    uint64_t lru = 0;
    bool valid = false;
  };

  void StreamTrain(Addr line, Cycles now);

  PrefetchSink* sink_;
  Rng rng_;
  bool adjacent_enabled_;
  bool dcu_enabled_;
  bool stream_enabled_;
  uint32_t stream_degree_;
  double stream_lock_probability_ = 0.4;

  Addr last_demand_line_ = ~0ull;  // DCU ascending-pair detector
  std::array<StreamEntry, 16> streams_{};
  uint64_t stream_tick_ = 0;
};

}  // namespace pmemsim

#endif  // SRC_CACHE_PREFETCHER_H_
